"""The translation lookaside buffer (TLB) of the BISR circuit.

"The faulty row addresses detected by BIST are stored in a translation
lookaside buffer (TLB).  This circuit uses an innovative design that
associates a sequence of faulty addresses with a unique, predetermined,
strictly increasing sequence of redundant addresses. ... In the second
pass, the incoming address is compared in parallel with all the stored
addresses in the TLB.  If a match is found, then an address diversion
occurs to a redundant location. ... The strictly increasing sequence of
redundant addresses guarantees that provided enough spares are
available, any faulty (nonspare or spare) row can be replaced."

The model is entry-accurate: entries are CAM rows; ``record`` assigns
spares strictly in increasing order; re-recording a still-faulty row
(because its assigned spare turned out faulty in a later pass) advances
it to the next spare — which is how iterated 2k-pass repair fixes
faults *within* the spares.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass
class TlbEntry:
    """One CAM row: a faulty row address mapped to a spare index."""

    row: int
    spare: int


class Tlb:
    """A ``spares``-entry TLB over ``regular_rows`` row addresses.

    Spare row ``s`` is addressed as row ``regular_rows + s``; because
    spares are themselves addressable, a faulty spare can be recorded
    and re-diverted in a later test pass.
    """

    def __init__(self, regular_rows: int, spares: int) -> None:
        if regular_rows < 1:
            raise ValueError("need at least one regular row")
        if spares < 1:
            raise ValueError("need at least one spare row")
        self.regular_rows = regular_rows
        self.spares = spares
        self._entries: List[TlbEntry] = []
        self._next_spare = 0
        self.overflowed = False

    # -- test-mode operations ------------------------------------------------

    def reset(self) -> None:
        """Clear all entries (start of a fresh self-test)."""
        self._entries.clear()
        self._next_spare = 0
        self.overflowed = False

    def record(self, row: int, remap: bool = False) -> bool:
        """Record a faulty row; returns False when out of spares.

        A row already present is a no-op unless ``remap`` is set —
        repeated detections of the same row within one test pass hit
        the parallel compare and are swallowed.  With ``remap`` (the
        caller saw the failure *despite* active diversion, i.e. the
        assigned spare is itself faulty), the row advances to the next
        spare in the strictly increasing sequence — the property that
        makes iterated 2k-pass repair converge on faulty spares.
        """
        if not 0 <= row < self.regular_rows + self.spares:
            raise ValueError(f"row {row} outside the address space")
        existing = self._find(row)
        if existing is not None and not remap:
            return True
        if self._next_spare >= self.spares:
            self.overflowed = True
            return False
        if existing is not None:
            existing.spare = self._next_spare
        else:
            self._entries.append(TlbEntry(row=row, spare=self._next_spare))
        self._next_spare += 1
        return True

    # -- normal-mode operation --------------------------------------------------

    def translate(self, row: int) -> Tuple[int, bool]:
        """Parallel compare-and-divert: returns (physical row, diverted).

        All entries compare simultaneously in hardware; at most one can
        match because ``record`` never duplicates a row key.
        """
        entry = self._find(row)
        if entry is None:
            return row, False
        return self.regular_rows + entry.spare, True

    # -- introspection -------------------------------------------------------------

    def _find(self, row: int) -> Optional[TlbEntry]:
        for entry in self._entries:
            if entry.row == row:
                return entry
        return None

    @property
    def entries(self) -> Tuple[TlbEntry, ...]:
        return tuple(self._entries)

    @property
    def spares_used(self) -> int:
        return self._next_spare

    @property
    def spares_left(self) -> int:
        return self.spares - self._next_spare

    def mapped_rows(self) -> Dict[int, int]:
        """Current diversion map: faulty row -> physical spare row."""
        return {
            e.row: self.regular_rows + e.spare for e in self._entries
        }

    def assigned_spares(self) -> List[int]:
        """Spare indices in recording order — strictly increasing."""
        order = sorted(self._entries, key=lambda e: e.spare)
        return [e.spare for e in order]

    def __len__(self) -> int:
        return len(self._entries)
