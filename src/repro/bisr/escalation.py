"""The repair supervisor: an escalation ladder over BIST/BISR.

The raw two-pass flow trusts every comparator hit: one bad read burns
one entry of the strictly-increasing spare sequence, forever.  That is
the right call for manufacturing test (faults are solid, the tester is
golden) and the wrong call in the field, where reads lie transiently
(upsets), intermittently (marginal cells), or systematically (a flaky
comparator).  :class:`RepairSupervisor` wraps the
:class:`~repro.bist.controller.BistScheduler` with three defences:

1. **N-of-M confirmation** — before a failing address is recorded into
   the TLB, the supervisor re-reads it M times against the last value
   written there; only ``confirm_threshold`` mismatches consume a
   spare.  A solid or p≈0.5 intermittent fault confirms immediately; a
   single transient upset does not, and its corrupted content is
   scrubbed back instead.
2. **Bounded retry with backoff** — a failed verify pass does not end
   the story: the supervisor waits an (exponentially growing) number of
   simulated maintenance cycles and re-runs the cycle with diversion
   active, which is exactly the paper's iterated 2k-pass repair of
   faulty spares, now bounded and logged.
3. **Graceful degradation** — when the ladder is exhausted or the
   spares are, the supervisor localises what is still broken and
   returns a structured :class:`DegradedResult` instead of raising, so
   a mission computer can map out the bad rows and carry on.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, List, Mapping, Optional, Set, Tuple

from repro.core.errors import ConfigError, ReproError

if TYPE_CHECKING:  # pragma: no cover - break the bisr <-> bist cycle
    from repro.bist.controller import TestTarget
    from repro.bist.march import MarchTest


@dataclass(frozen=True)
class EscalationPolicy:
    """Tunables of the escalation ladder.

    Attributes:
        confirm_reads: M — re-reads per suspected address.
        confirm_threshold: N — mismatches (out of M) required before a
            spare is consumed.
        max_attempts: bounded test/repair cycles before degrading.
        backoff_base: simulated maintenance cycles waited after the
            first failed attempt.
        backoff_factor: multiplier applied to the wait per attempt.
    """

    confirm_reads: int = 5
    confirm_threshold: int = 2
    max_attempts: int = 3
    backoff_base: int = 8
    backoff_factor: int = 2

    def __post_init__(self) -> None:
        if self.confirm_reads < 1:
            raise ConfigError("confirm_reads must be >= 1")
        if not 1 <= self.confirm_threshold <= self.confirm_reads:
            raise ConfigError(
                f"confirm_threshold must be in "
                f"1..{self.confirm_reads} (confirm_reads)"
            )
        if self.max_attempts < 1:
            raise ConfigError("max_attempts must be >= 1")
        if self.backoff_base < 0 or self.backoff_factor < 1:
            raise ConfigError(
                "backoff_base must be >= 0 and backoff_factor >= 1"
            )


@dataclass
class AttemptRecord:
    """One rung of the ladder: what a test/repair cycle saw and did."""

    attempt: int
    fail_count: int
    confirmed_rows: Tuple[int, ...]
    rejected_addresses: Tuple[int, ...]
    spares_used: int
    repaired: bool
    backoff_cycles: int = 0


@dataclass
class SupervisorResult:
    """Outcome of a supervised self-repair run.

    ``rejected_addresses`` lists comparator hits that failed N-of-M
    confirmation — suspected transients that consumed no spare.
    """

    repaired: bool
    attempts: int
    confirmed_rows: Tuple[int, ...]
    rejected_addresses: Tuple[int, ...]
    spares_used: int
    probe_reads: int
    backoff_cycles: int
    history: Tuple[AttemptRecord, ...] = ()

    @property
    def degraded(self) -> bool:
        return False

    def to_dict(self) -> dict:
        """JSON-ready representation (the checkpoint-journal format).

        Includes the ``degraded`` discriminator so
        :func:`supervisor_result_from_dict` rebuilds the right class
        after a dict → JSON → dict round-trip.
        """
        data = asdict(self)
        data["degraded"] = self.degraded
        return data


@dataclass
class DegradedResult(SupervisorResult):
    """Repair did not converge; the device is degraded, not dead.

    Attributes:
        unrepaired_rows: rows a post-mortem sweep still found faulty
            (empty when failures could not be localised — the signature
            of a flaky comparator).
        reason: one-line diagnosis of why the ladder gave up.
    """

    unrepaired_rows: Tuple[int, ...] = ()
    reason: str = ""

    @property
    def degraded(self) -> bool:
        return True


def supervisor_result_from_dict(data: Mapping) -> SupervisorResult:
    """Rebuild a :meth:`SupervisorResult.to_dict` payload.

    Tolerates a JSON round-trip (tuples come back as lists) and older
    payloads missing the ``degraded`` discriminator, which are then
    classified by the presence of degradation-only fields.
    """
    data = dict(data)
    degraded = bool(data.pop("degraded",
                             "reason" in data or "unrepaired_rows" in data))
    history = tuple(
        AttemptRecord(
            attempt=record["attempt"],
            fail_count=record["fail_count"],
            confirmed_rows=tuple(record["confirmed_rows"]),
            rejected_addresses=tuple(record["rejected_addresses"]),
            spares_used=record["spares_used"],
            repaired=record["repaired"],
            backoff_cycles=record.get("backoff_cycles", 0),
        )
        for record in data.pop("history", ())
    )
    common = dict(
        repaired=data["repaired"],
        attempts=data["attempts"],
        confirmed_rows=tuple(data["confirmed_rows"]),
        rejected_addresses=tuple(data["rejected_addresses"]),
        spares_used=data["spares_used"],
        probe_reads=data["probe_reads"],
        backoff_cycles=data["backoff_cycles"],
        history=history,
    )
    if degraded:
        return DegradedResult(
            unrepaired_rows=tuple(data.get("unrepaired_rows", ())),
            reason=data.get("reason", ""),
            **common,
        )
    return SupervisorResult(**common)


class _ConfirmingTarget:
    """TestTarget proxy gating ``record_fail`` behind N-of-M re-reads.

    March semantics guarantee every read expects the last value written
    to that address, so the proxy shadows writes and adjudicates a
    suspected failure by re-reading against the shadow.  Rejected
    suspects get the expected value scrubbed back, healing transient
    content corruption on the spot.
    """

    def __init__(self, target: TestTarget, policy: EscalationPolicy) -> None:
        self.target = target
        self.policy = policy
        self._shadow = {}
        self.confirmed: List[int] = []
        self.rejected: List[int] = []
        self.probe_reads = 0

    @property
    def word_count(self) -> int:
        return self.target.word_count

    def read(self, address: int) -> int:
        return self.target.read(address)

    def write(self, address: int, word: int) -> None:
        self._shadow[address] = word
        self.target.write(address, word)

    def set_repair_mode(self, enabled: bool) -> None:
        self.target.set_repair_mode(enabled)

    def retention_wait(self) -> None:
        self.target.retention_wait()

    def reset_for_test(self) -> None:
        self.target.reset_for_test()

    def record_fail(self, address: int) -> None:
        expected = self._shadow.get(address)
        if expected is None:
            # Nothing written yet — cannot adjudicate; trust the hit.
            self.target.record_fail(address)
            self.confirmed.append(address)
            return
        mismatches = 0
        for _ in range(self.policy.confirm_reads):
            self.probe_reads += 1
            if self.target.read(address) != expected:
                mismatches += 1
        if mismatches >= self.policy.confirm_threshold:
            self.target.record_fail(address)
            self.confirmed.append(address)
        else:
            self.rejected.append(address)
            self.target.write(address, expected)  # scrub the upset


class RepairSupervisor:
    """Escalating test-and-repair driver around a BistScheduler."""

    def __init__(self, march: "MarchTest", bpw: int,
                 policy: Optional[EscalationPolicy] = None) -> None:
        # Imported here, not at module level: the controller lives in
        # repro.bist, which itself imports repair types from repro.bisr.
        from repro.bist.controller import BistScheduler

        self.march = march
        self.bpw = bpw
        self.policy = policy or EscalationPolicy()
        self.scheduler = BistScheduler(march, bpw)

    # -- the ladder ---------------------------------------------------------

    def run(self, target: TestTarget) -> SupervisorResult:
        """Supervised self-repair; never raises for anticipated faults."""
        policy = self.policy
        history: List[AttemptRecord] = []
        confirmed_rows: Set[int] = set()
        rejected: List[int] = []
        probe_reads = 0
        total_backoff = 0
        bpc = self._bpc(target)
        out_of_spares = False

        for attempt in range(1, policy.max_attempts + 1):
            gate = _ConfirmingTarget(target, policy)
            try:
                # Attempt 1 is the standard two-pass flow; retries run
                # with diversion active during the test pass — the
                # iterated 2k-pass repair of faults within the spares.
                result = self.scheduler.run(
                    gate, passes=2, divert_during_test=attempt > 1
                )
            except ReproError as error:
                return self._degraded(
                    history, confirmed_rows, rejected, probe_reads,
                    total_backoff, target,
                    reason=f"escalation aborted: {error}",
                )
            probe_reads += gate.probe_reads
            confirmed_rows.update(a // bpc for a in gate.confirmed)
            rejected.extend(gate.rejected)
            record = AttemptRecord(
                attempt=attempt,
                fail_count=result.fail_count,
                confirmed_rows=tuple(sorted(
                    {a // bpc for a in gate.confirmed}
                )),
                rejected_addresses=tuple(gate.rejected),
                spares_used=self._spares_used(target),
                repaired=result.repaired,
            )
            history.append(record)
            if result.repaired:
                return SupervisorResult(
                    repaired=True,
                    attempts=attempt,
                    confirmed_rows=tuple(sorted(confirmed_rows)),
                    rejected_addresses=tuple(rejected),
                    spares_used=self._spares_used(target),
                    probe_reads=probe_reads,
                    backoff_cycles=total_backoff,
                    history=tuple(history),
                )
            out_of_spares = self._spares_left(target) == 0
            if out_of_spares:
                break  # retrying cannot help: the sequence is spent
            if attempt < policy.max_attempts:
                wait = policy.backoff_base * \
                    policy.backoff_factor ** (attempt - 1)
                record.backoff_cycles = wait
                total_backoff += wait

        reason = self._diagnose(history, confirmed_rows, rejected,
                                out_of_spares)
        return self._degraded(history, confirmed_rows, rejected,
                              probe_reads, total_backoff, target,
                              reason=reason)

    # -- post-mortem ----------------------------------------------------------

    def _degraded(self, history, confirmed_rows, rejected, probe_reads,
                  total_backoff, target, reason: str) -> DegradedResult:
        return DegradedResult(
            repaired=False,
            attempts=len(history),
            confirmed_rows=tuple(sorted(confirmed_rows)),
            rejected_addresses=tuple(rejected),
            spares_used=self._spares_used(target),
            probe_reads=probe_reads,
            backoff_cycles=total_backoff,
            history=tuple(history),
            unrepaired_rows=self._sweep_unrepaired(target),
            reason=reason,
        )

    def _diagnose(self, history, confirmed_rows, rejected,
                  out_of_spares: bool) -> str:
        if out_of_spares:
            return (f"spares exhausted after "
                    f"{len(history)} attempt(s)")
        saw_fails = any(r.fail_count for r in history)
        if saw_fails and not confirmed_rows:
            return (f"inconsistent verdicts: {len(rejected)} comparator "
                    f"hit(s) failed {self.policy.confirm_threshold}-of-"
                    f"{self.policy.confirm_reads} confirmation "
                    f"(suspected flaky comparator or transient upsets)")
        return (f"repair did not converge within "
                f"{self.policy.max_attempts} attempt(s)")

    def _sweep_unrepaired(self, target: TestTarget) -> Tuple[int, ...]:
        """Localise still-faulty rows with diversion active.

        A destructive write/read sweep over both data polarities —
        acceptable here because the supervised flow is a test context,
        and the caller needs the row list to degrade around.
        """
        bpc = self._bpc(target)
        mask = (1 << self.bpw) - 1
        target.set_repair_mode(True)
        bad_rows: Set[int] = set()
        for pattern in (0, mask):
            for address in range(target.word_count):
                target.write(address, pattern)
            for address in range(target.word_count):
                if target.read(address) != pattern:
                    bad_rows.add(address // bpc)
        return tuple(sorted(bad_rows))

    # -- device introspection -----------------------------------------------------

    @staticmethod
    def _tlb(target):
        return getattr(target, "tlb", None)

    def _spares_used(self, target) -> int:
        tlb = self._tlb(target)
        return tlb.spares_used if tlb is not None else 0

    def _spares_left(self, target) -> int:
        tlb = self._tlb(target)
        return tlb.spares_left if tlb is not None else 1

    def _bpc(self, target) -> int:
        array = getattr(target, "array", None)
        if array is not None:
            return array.bpc
        inner = getattr(target, "target", None)
        if inner is not None:
            return self._bpc(inner)
        return 1
