"""2-D repair allocation: assigning spare rows and columns to faults.

Row-only repair is trivial (one faulty row, one spare row); the moment
spare columns exist the problem becomes the classic minimum line cover
of a fault bitmap under separate row/column budgets — NP-hard in
general (Kuo & Fuchs, 1987).  The allocator uses the standard two-step
attack:

1. **Must-repair analysis** — any row holding more faults than the
   spare columns still available must take a spare row (no column
   assignment can cover it), and symmetrically for columns.  Applying
   the rule to a fixpoint shrinks the problem; on many real fault
   patterns (single row/column defects plus sparse cells) it solves it
   outright, which is why the allocator is *exact* on must-repair-
   reducible patterns.

2. **Branch-and-bound cover** of the sparse residual — branch on an
   uncovered fault (cover its row, or cover its column), prune on a
   lines lower bound from an independent fault set and on budget
   feasibility.  The search is exact but bounded by ``node_budget``;
   past the budget a greedy most-faults-first cover takes over and the
   plan is flagged ``exact=False`` so callers (and the
   :class:`~repro.bisr.escalation.DegradedResult` path) know the
   verdict is best-effort.  The allocator never raises and never hangs
   on any input.

Faulty spares are handled with the same walk the hardware does: spare
assignment is a strictly increasing sequence, so landing ``n`` repairs
on good spares consumes every faulty entry passed along the way —
``spare_rows_used``/``spare_cols_used`` report that consumption,
matching what the iterated 2k-pass flow burns in
:class:`~repro.bisr.tlb.Tlb`/:class:`~repro.bisr.colsteer.ColumnSteer`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Set, Tuple


@dataclass(frozen=True)
class RepairPlan:
    """The allocator's verdict on one fault bitmap.

    Attributes:
        repairable: True when every fault is covered within budget.
        rows: rows to divert to spare rows (sorted; includes
            must-repair rows).
        cols: physical columns to steer to spare columns (sorted).
        must_repair_rows / must_repair_cols: the subset forced by
            must-repair analysis.
        spare_rows_used / spare_cols_used: entries consumed from the
            strictly increasing spare sequences, *including* faulty
            spares walked over.  For an unrepairable plan this counts
            what the partial (greedy) assignment would have burned.
        exact: True when branch-and-bound completed (the cover is
            minimal, or infeasibility is proven); False after a greedy
            fallback.
        nodes_explored: branch-and-bound nodes visited.
        reason: one-line explanation for non-repairable or non-exact
            outcomes.
    """

    repairable: bool
    rows: Tuple[int, ...]
    cols: Tuple[int, ...]
    must_repair_rows: Tuple[int, ...]
    must_repair_cols: Tuple[int, ...]
    spare_rows_used: int
    spare_cols_used: int
    exact: bool
    nodes_explored: int
    reason: str = ""

    @property
    def lines_used(self) -> int:
        return len(self.rows) + len(self.cols)

    def to_dict(self) -> dict:
        """JSON-ready representation with a ``kind`` discriminator."""
        data = asdict(self)
        data["kind"] = "repair_plan"
        return data

    def summary(self) -> str:
        verdict = "repairable" if self.repairable else "UNREPAIRABLE"
        mode = "exact" if self.exact else "greedy"
        note = f" ({self.reason})" if self.reason else ""
        return (
            f"{verdict} [{mode}]: rows={list(self.rows)} "
            f"cols={list(self.cols)}, consumes "
            f"{self.spare_rows_used} spare row(s) + "
            f"{self.spare_cols_used} spare col(s){note}"
        )


def repair_plan_from_dict(data: Mapping) -> RepairPlan:
    """Rebuild a :meth:`RepairPlan.to_dict` payload.

    Tolerates a JSON round-trip (tuples come back as lists); rejects
    payloads carrying the wrong ``kind``.
    """
    data = dict(data)
    kind = data.pop("kind", "repair_plan")
    if kind != "repair_plan":
        raise ValueError(f"not a repair_plan payload: kind={kind!r}")
    return RepairPlan(
        repairable=bool(data["repairable"]),
        rows=tuple(data["rows"]),
        cols=tuple(data["cols"]),
        must_repair_rows=tuple(data["must_repair_rows"]),
        must_repair_cols=tuple(data["must_repair_cols"]),
        spare_rows_used=data["spare_rows_used"],
        spare_cols_used=data["spare_cols_used"],
        exact=bool(data["exact"]),
        nodes_explored=data["nodes_explored"],
        reason=data.get("reason", ""),
    )


def sequence_spares_consumed(needed: int, faulty: Iterable[int],
                             total: int) -> int:
    """Entries burned landing ``needed`` repairs on good spares.

    The strictly increasing assignment walks spares 0, 1, 2, ...; a
    faulty spare is consumed (its entry re-records and advances) but
    repairs nothing.  Returns ``total`` when the good spares run out —
    the sequence is spent either way.
    """
    if needed <= 0:
        return 0
    bad = set(faulty)
    good = 0
    for idx in range(total):
        if idx not in bad:
            good += 1
            if good == needed:
                return idx + 1
    return total


class _BudgetExhausted(Exception):
    """Internal: branch-and-bound ran past its node budget."""


class _Cover:
    """Branch-and-bound state over the residual sparse faults."""

    def __init__(self, faults: Sequence[Tuple[int, int]],
                 max_rows: int, max_cols: int, node_budget: int) -> None:
        self.faults = sorted(set(faults))
        self.max_rows = max_rows
        self.max_cols = max_cols
        self.node_budget = node_budget
        self.nodes = 0
        self.best: Tuple[Tuple[int, ...], Tuple[int, ...]] = None

    def solve(self) -> None:
        """Fills ``self.best`` (None = proven infeasible)."""
        self._descend(self.faults, frozenset(), frozenset())

    def _lower_bound(self, uncovered: Sequence[Tuple[int, int]]) -> int:
        """Greedy independent fault set: no two share a row or column,
        so each needs its own repair line."""
        seen_rows: Set[int] = set()
        seen_cols: Set[int] = set()
        bound = 0
        for r, c in uncovered:
            if r not in seen_rows and c not in seen_cols:
                seen_rows.add(r)
                seen_cols.add(c)
                bound += 1
        return bound

    def _descend(self, uncovered: Sequence[Tuple[int, int]],
                 rows: frozenset, cols: frozenset) -> None:
        self.nodes += 1
        if self.nodes > self.node_budget:
            raise _BudgetExhausted
        if not uncovered:
            if self.best is None or \
                    len(rows) + len(cols) < len(self.best[0]) + \
                    len(self.best[1]):
                self.best = (tuple(sorted(rows)), tuple(sorted(cols)))
            return
        used = len(rows) + len(cols)
        if self.best is not None:
            best_size = len(self.best[0]) + len(self.best[1])
            if used + self._lower_bound(uncovered) >= best_size:
                return
        rows_left = self.max_rows - len(rows)
        cols_left = self.max_cols - len(cols)
        # Budget feasibility: with one budget spent, the other must
        # cover every remaining distinct line on its own.
        if rows_left == 0 and len({c for _r, c in uncovered}) > cols_left:
            return
        if cols_left == 0 and len({r for r, _c in uncovered}) > rows_left:
            return
        if rows_left == 0 and cols_left == 0:
            return
        r, c = uncovered[0]
        if rows_left > 0:
            remaining = [f for f in uncovered if f[0] != r]
            self._descend(remaining, rows | {r}, cols)
        if cols_left > 0:
            remaining = [f for f in uncovered if f[1] != c]
            self._descend(remaining, rows, cols | {c})


def _greedy_cover(faults: Sequence[Tuple[int, int]],
                  max_rows: int, max_cols: int,
                  ) -> Tuple[List[int], List[int], bool]:
    """Most-faults-first line cover.  Deterministic tie-break: higher
    count wins, then rows before columns, then lower index."""
    uncovered = sorted(set(faults))
    rows: List[int] = []
    cols: List[int] = []
    while uncovered:
        row_counts: Dict[int, int] = {}
        col_counts: Dict[int, int] = {}
        for r, c in uncovered:
            row_counts[r] = row_counts.get(r, 0) + 1
            col_counts[c] = col_counts.get(c, 0) + 1
        candidates = []
        if len(rows) < max_rows:
            candidates += [(-n, 0, r) for r, n in row_counts.items()]
        if len(cols) < max_cols:
            candidates += [(-n, 1, c) for c, n in col_counts.items()]
        if not candidates:
            return rows, cols, False
        _neg, kind, index = min(candidates)
        if kind == 0:
            rows.append(index)
            uncovered = [f for f in uncovered if f[0] != index]
        else:
            cols.append(index)
            uncovered = [f for f in uncovered if f[1] != index]
    return rows, cols, True


def allocate(
    faults: Iterable[Tuple[int, int]],
    rows: int,
    cols: int,
    spare_rows: int,
    spare_cols: int,
    faulty_spare_rows: Iterable[int] = (),
    faulty_spare_cols: Iterable[int] = (),
    node_budget: int = 20000,
) -> RepairPlan:
    """Allocate spare rows/columns to a fault bitmap.

    Args:
        faults: (row, physical column) fault coordinates in the regular
            array; duplicates are folded.
        rows / cols: regular array geometry (cols = bpw * bpc).
        spare_rows / spare_cols: spare line counts.
        faulty_spare_rows / faulty_spare_cols: spare indices known bad
            — they repair nothing but are still consumed when the
            strictly increasing sequence walks over them.
        node_budget: branch-and-bound node limit; 0 skips straight to
            the greedy cover.  The allocator never raises past it.
    """
    if rows < 1 or cols < 1:
        raise ValueError("rows and cols must be positive")
    if spare_rows < 0 or spare_cols < 0:
        raise ValueError("spare counts must be non-negative")
    fault_set: Set[Tuple[int, int]] = set()
    for r, c in faults:
        if not (0 <= r < rows and 0 <= c < cols):
            raise ValueError(f"fault ({r}, {c}) outside the array")
        fault_set.add((r, c))
    bad_rows = {s for s in faulty_spare_rows if 0 <= s < spare_rows}
    bad_cols = {s for s in faulty_spare_cols if 0 <= s < spare_cols}
    good_rows = spare_rows - len(bad_rows)
    good_cols = spare_cols - len(bad_cols)

    def finish(repairable: bool, row_sel: Iterable[int],
               col_sel: Iterable[int], must_r: Iterable[int],
               must_c: Iterable[int], exact: bool, nodes: int,
               reason: str = "") -> RepairPlan:
        row_sel = tuple(sorted(set(row_sel)))
        col_sel = tuple(sorted(set(col_sel)))
        return RepairPlan(
            repairable=repairable,
            rows=row_sel,
            cols=col_sel,
            must_repair_rows=tuple(sorted(set(must_r))),
            must_repair_cols=tuple(sorted(set(must_c))),
            spare_rows_used=sequence_spares_consumed(
                len(row_sel), bad_rows, spare_rows),
            spare_cols_used=sequence_spares_consumed(
                len(col_sel), bad_cols, spare_cols),
            exact=exact,
            nodes_explored=nodes,
            reason=reason,
        )

    if not fault_set:
        return finish(True, (), (), (), (), True, 0)

    # -- step 1: must-repair fixpoint ------------------------------------
    must_r: Set[int] = set()
    must_c: Set[int] = set()
    residual = set(fault_set)
    while True:
        row_counts: Dict[int, int] = {}
        col_counts: Dict[int, int] = {}
        for r, c in residual:
            row_counts[r] = row_counts.get(r, 0) + 1
            col_counts[c] = col_counts.get(c, 0) + 1
        cols_avail = good_cols - len(must_c)
        rows_avail = good_rows - len(must_r)
        forced_r = sorted(r for r, n in row_counts.items()
                          if n > cols_avail and r not in must_r)
        if forced_r:
            if len(must_r) + len(forced_r) > good_rows:
                return finish(
                    False, must_r, must_c, must_r, must_c, True, 0,
                    reason=(
                        f"must-repair needs {len(must_r) + len(forced_r)} "
                        f"spare rows, only {good_rows} usable"),
                )
            must_r.update(forced_r)
            residual = {f for f in residual if f[0] not in must_r}
            continue
        forced_c = sorted(c for c, n in col_counts.items()
                          if n > rows_avail and c not in must_c)
        if forced_c:
            if len(must_c) + len(forced_c) > good_cols:
                return finish(
                    False, must_r, must_c, must_r, must_c, True, 0,
                    reason=(
                        f"must-repair needs {len(must_c) + len(forced_c)} "
                        f"spare columns, only {good_cols} usable"),
                )
            must_c.update(forced_c)
            residual = {f for f in residual if f[1] not in must_c}
            continue
        break

    rows_left = good_rows - len(must_r)
    cols_left = good_cols - len(must_c)
    if not residual:
        return finish(True, must_r, must_c, must_r, must_c, True, 0)

    # -- step 2: exact branch-and-bound on the residual ------------------
    if node_budget > 0:
        cover = _Cover(sorted(residual), rows_left, cols_left, node_budget)
        try:
            cover.solve()
        except _BudgetExhausted:
            pass
        else:
            if cover.best is None:
                return finish(
                    False, must_r, must_c, must_r, must_c, True,
                    cover.nodes,
                    reason=(
                        f"exhaustive search proved no cover fits "
                        f"{rows_left} spare row(s) + {cols_left} "
                        f"spare col(s)"),
                )
            extra_r, extra_c = cover.best
            return finish(
                True, must_r | set(extra_r), must_c | set(extra_c),
                must_r, must_c, True, cover.nodes,
            )
        nodes = cover.nodes
        budget_note = f"node budget {node_budget} exhausted"
    else:
        nodes = 0
        budget_note = "node budget 0: exact search skipped"

    # -- step 3: greedy fallback -----------------------------------------
    g_rows, g_cols, covered = _greedy_cover(
        sorted(residual), rows_left, cols_left)
    if covered:
        reason = f"{budget_note}; greedy cover found"
    else:
        reason = f"{budget_note}; greedy cover ran out of spares"
    return finish(
        covered, must_r | set(g_rows), must_c | set(g_cols),
        must_r, must_c, False, nodes, reason=reason,
    )
