"""TLB delay-penalty model.

"The TLB produces a modest delay penalty (of about 1.2 ns with four
spare rows and a 0.7-um technology) for matching and mapping the
incoming addresses during normal operation.  This small delay, which is
at least an order of magnitude smaller than the RAM access time, will
not result in stretching of the RAM access time" [when masked].

The path: search-line drivers fan the incoming address across all
entries -> the match lines resolve in parallel (one two-NMOS stack
discharge against the match-line load) -> the matched entry's spare
address is driven through tristate buffers onto the row-decoder input.
Entry count affects only the *fan-out* of the search drivers and the
wired-OR load of the output mux, so the delay grows gently with the
number of spares — which is why the paper only vouches for masking with
1-4 spares and "will not be able to guarantee" it beyond.

The analytic model uses switch-level RC stages calibrated against the
transient engine (see ``benchmarks/bench_tlb_delay.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.circuit.mosfet import effective_resistance
from repro.tech.process import Process


@dataclass(frozen=True)
class TlbDelayModel:
    """Analytic TLB delay for one (process, geometry) point.

    Attributes:
        process: target process.
        address_bits: width of the compared row address.
        spares: TLB entry count.
    """

    process: Process
    address_bits: int
    spares: int

    def __post_init__(self) -> None:
        if self.address_bits < 1:
            raise ValueError("address_bits must be positive")
        if self.spares < 1:
            raise ValueError("spares must be positive")

    def breakdown(self) -> Dict[str, float]:
        """Per-stage delays in seconds.

        Calibrated against the paper's quoted ~1.2 ns at 0.7 um with
        four spare rows and a 10-bit row address; every term still
        scales physically with entry count, address width, and process.
        """
        p = self.process
        f = p.feature_um
        # Stage 1: search-line driver charging one compare gate per
        # entry, the vertical search line (one CAM row pitch, 48
        # lambda, per entry), and the fixed route from the address pads.
        r_driver = effective_resistance(p.nmos, p.vdd, 4 * f, f)
        gate_cap = p.nmos.cox * (8 * f * 1e-6) * (f * 1e-6)
        wire_per_entry = 24 * f * p.wire_c_af_um * 1e-18
        c_search = self.spares * (gate_cap + wire_per_entry) + 80e-15
        t_search = 0.69 * r_driver * c_search

        # Stage 2: match-line discharge through a two-NMOS stack; the
        # load is one stack drain junction per address bit, the match
        # wire spanning address_bits CAM cells (42 lambda each), and
        # the match sense gate.
        r_stack = 2 * effective_resistance(p.nmos, p.vdd, 4 * f, f)
        junction = 3.0 * p.nmos.cj * (4 * f * 1e-6) * (1.5 * f * 1e-6)
        match_wire = self.address_bits * 42 * f * \
            p.wire_c_af_um * 1e-18
        c_match = self.address_bits * junction + match_wire + 150e-15
        t_match = 0.69 * r_stack * c_match

        # Stage 3: spare-address encode plus the tristate mux driving
        # the row-decoder input: four gate stages (match buffer,
        # priority encode, tristate enable, output driver), each loaded
        # by the wired-OR of all entries' tristate drains.
        r_gate = effective_resistance(p.pmos, p.vdd, 6 * f, f)
        c_mux = self.spares * junction + 80e-15
        t_mux = 4 * 0.69 * r_gate * c_mux

        return {
            "search_line": t_search,
            "match_line": t_match,
            "encode_mux": t_mux,
        }

    def total(self) -> float:
        """Total TLB penalty in seconds."""
        return sum(self.breakdown().values())


def tlb_delay_s(process: Process, address_bits: int, spares: int) -> float:
    """Convenience wrapper: total TLB delay in seconds."""
    return TlbDelayModel(process, address_bits, spares).total()


def tlb_delay_breakdown(process: Process, address_bits: int,
                        spares: int) -> Dict[str, float]:
    """Convenience wrapper: per-stage delays in seconds."""
    return TlbDelayModel(process, address_bits, spares).breakdown()
