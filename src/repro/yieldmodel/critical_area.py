"""Critical-area analysis (the Khare et al. discussion in §VII).

"Using simulation approaches with prototype CAD tools, Khare et al.
show that the critical area for these fatal flaws, plotted against the
defect radius, may be either very high ... or nonexistent ...
depending on which of two possible RAM layout templates are chosen.
BISRAMGEN implements the 6T SRAM cell layout that causes a near-zero
critical area for these fatal faults."

A circular defect of radius r is *fatal* when it breaks a global net
(an **open**: the defect spans the full width of a supply or word-line
wire) or bridges two distinct nets (a **short**: the defect overlaps
two shapes that the connectivity does not join).  The critical area of
a layout for radius r is the area where such a defect's centre may
land.  This module computes the standard rectangle-based estimates:

* open critical area of a wire of width w, length L:
  ``L * max(0, 2r - w)`` (the centre band where the circle covers the
  wire's full width, approximated by its inscribed square),
* short critical area between two parallel shapes with gap g:
  ``overlap_length * max(0, 2r - g)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.geometry import Rect
from repro.layout.cell import Cell


@dataclass(frozen=True)
class CriticalAreaReport:
    """Critical areas (cu^2) for one layer at one defect radius."""

    layer: str
    radius_cu: int
    open_area: float
    short_area: float

    @property
    def total(self) -> float:
        return self.open_area + self.short_area


def open_critical_area(rects: Sequence[Rect], radius_cu: int) -> float:
    """Open critical area of a set of wires at one defect radius.

    Per rectangle: a defect breaks the wire when it spans the short
    dimension; the centre band is ``long * max(0, 2r - short)``.
    """
    if radius_cu < 0:
        raise ValueError("radius must be non-negative")
    total = 0.0
    for r in rects:
        if r.area == 0:
            continue
        short = min(r.width, r.height)
        long = max(r.width, r.height)
        total += long * max(0, 2 * radius_cu - short)
    return total


def short_critical_area(rects: Sequence[Rect], radius_cu: int) -> float:
    """Short critical area between same-layer shape pairs.

    Two shapes with facing-run length ``L`` and gap ``g`` contribute
    ``L * max(0, 2r - g)``.  Touching/overlapping shapes are one net
    and contribute nothing.
    """
    if radius_cu < 0:
        raise ValueError("radius must be non-negative")
    total = 0.0
    solid = [r for r in rects if r.area > 0]
    for i, a in enumerate(solid):
        for b in solid[i + 1:]:
            if a.intersects(b):
                continue
            gap_x = max(a.x1, b.x1) - min(a.x2, b.x2)
            gap_y = max(a.y1, b.y1) - min(a.y2, b.y2)
            if gap_x > 0 and gap_y > 0:
                continue  # diagonal neighbours: negligible facing run
            if gap_x > 0:
                run = min(a.y2, b.y2) - max(a.y1, b.y1)
                gap = gap_x
            else:
                run = min(a.x2, b.x2) - max(a.x1, b.x1)
                gap = gap_y
            if run <= 0:
                continue
            total += run * max(0, 2 * radius_cu - gap)
    return total


def layer_critical_area(cell: Cell, layer: str,
                        radius_cu: int) -> CriticalAreaReport:
    """Open + short critical area of one layer of a flattened cell."""
    rects = [r for l, r in cell.flatten() if l == layer and r.area > 0]
    return CriticalAreaReport(
        layer=layer,
        radius_cu=radius_cu,
        open_area=open_critical_area(rects, radius_cu),
        short_area=short_critical_area(rects, radius_cu),
    )


def global_net_critical_area(
    cell: Cell,
    radius_cu: int,
    global_layers: Sequence[str] = ("metal1", "metal3"),
) -> Dict[str, CriticalAreaReport]:
    """Fatal (global-net) critical areas: supply rails (metal1) and
    word lines (metal3) — the nets whose failure no row repair can fix.
    """
    return {
        layer: layer_critical_area(cell, layer, radius_cu)
        for layer in global_layers
    }


def critical_area_curve(
    cell: Cell, layer: str, radii_cu: Sequence[int]
) -> List[Tuple[int, float]]:
    """(radius, total critical area) series — the Khare-style plot."""
    rects = [r for l, r in cell.flatten() if l == layer and r.area > 0]
    out = []
    for radius in radii_cu:
        total = open_critical_area(rects, radius) + \
            short_critical_area(rects, radius)
        out.append((radius, total))
    return out
