"""Stapper's negative-binomial yield model.

"Let us also assume the well-known yield formula due to Stapper to
calculate the original yield of the memory array without built-in
self-repair: Y = (1 + d*A/alpha)^(-alpha), where d is the defect
density, A is the area of the RAM array, and alpha is some clustering
factor of the defects."  alpha -> infinity recovers the Poisson model;
small alpha means strongly clustered defects (kinder to yield).
"""

from __future__ import annotations

import math


def stapper_yield(defect_density: float, area: float,
                  alpha: float = 2.0) -> float:
    """Y = (1 + d*A/alpha)^(-alpha).

    Args:
        defect_density: defects per unit area.
        area: chip/macro area in matching units.
        alpha: clustering factor; typical manufacturing fits are 1-5.
    """
    if defect_density < 0 or area < 0:
        raise ValueError("defect density and area must be non-negative")
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    return (1.0 + defect_density * area / alpha) ** (-alpha)


def defects_from_yield(yield_value: float, alpha: float = 2.0) -> float:
    """Invert Stapper: mean defect count d*A from an observed yield.

    Used to back defect counts out of published die-yield figures when
    reconstructing the cost tables.
    """
    if not 0.0 < yield_value <= 1.0:
        raise ValueError("yield must be in (0, 1]")
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    return alpha * (yield_value ** (-1.0 / alpha) - 1.0)


def poisson_limit_error(defect_count: float, alpha: float) -> float:
    """|Stapper - Poisson| yield gap for a given mean defect count.

    Diagnostic helper: quantifies how much clustering matters at a
    design point (the gap vanishes as alpha grows).
    """
    stapper = (1.0 + defect_count / alpha) ** (-alpha)
    poisson = math.exp(-defect_count)
    return abs(stapper - poisson)
