"""Chip-level yield with an embedded BISR RAM (paper section VII).

"The simplest model we can use to estimate the yield of a chip is the
product of the yield of all the constituent macrocells, including the
redundant RAM array with BISR: Y_chip = Y_RAM * prod Y_i."  All
macrocells except the caches are assumed non-redundant, so improving
the cache yield by a factor improves the die yield by the same factor.
"""

from __future__ import annotations

from typing import Sequence


def chip_yield(macro_yields: Sequence[float]) -> float:
    """Product yield over independent macrocells."""
    if not macro_yields:
        raise ValueError("need at least one macrocell yield")
    y = 1.0
    for value in macro_yields:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"yield {value} outside [0, 1]")
        y *= value
    return y


def embedded_ram_yield(die_yield: float, ram_area_fraction: float) -> float:
    """Back the embedded-RAM yield out of a published die yield.

    "To calculate the embedded RAM (without BISR) yield from the die
    yield, we can use the simple formula:
    Embedded RAM yield = (Die yield)^(RAM area / die area)" — valid
    when the same defect statistics cover the whole die.
    """
    if not 0.0 < die_yield <= 1.0:
        raise ValueError("die yield must be in (0, 1]")
    if not 0.0 <= ram_area_fraction <= 1.0:
        raise ValueError("area fraction must be in [0, 1]")
    return die_yield ** ram_area_fraction


def chip_yield_with_bisr(
    die_yield: float,
    ram_area_fraction: float,
    ram_yield_improvement: float,
) -> float:
    """Die yield after making the embedded RAM self-repairable.

    The RAM macro's yield improves by ``ram_yield_improvement``; the
    rest of the die is untouched, so the die yield scales by the same
    factor, clamped at the non-RAM yield ceiling (a RAM yield cannot
    exceed 1).
    """
    if ram_yield_improvement < 1.0:
        raise ValueError("BISR cannot reduce the RAM yield in this model")
    ram_yield = embedded_ram_yield(die_yield, ram_area_fraction)
    rest_yield = die_yield / ram_yield
    improved_ram = min(1.0, ram_yield * ram_yield_improvement)
    return rest_yield * improved_ram
