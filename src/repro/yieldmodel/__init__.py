"""Yield models (paper section VII).

* :mod:`~repro.yieldmodel.poisson` — Poisson single-cell yield and the
  derived row/word fault probabilities,
* :mod:`~repro.yieldmodel.stapper` — Stapper's negative-binomial yield
  with defect clustering,
* :mod:`~repro.yieldmodel.repair_prob` — the repairability probability
  R and the BISR yield Y_R (the quantities of Fig. 4),
* :mod:`~repro.yieldmodel.chip` — chip-level product yield with an
  embedded BISR RAM among non-redundant macrocells.
"""

from repro.yieldmodel.poisson import (
    cell_yield,
    cell_fault_prob,
    row_fault_prob,
    word_fault_prob,
)
from repro.yieldmodel.stapper import stapper_yield, defects_from_yield
from repro.yieldmodel.repair_prob import (
    repair_probability,
    repair_probability_2d,
    bisr_yield,
    bisr_yield_2d,
    yield_curve,
)
from repro.yieldmodel.montecarlo import (
    MonteCarloYield,
    simulate_yield,
    simulate_yield_2d,
)
from repro.yieldmodel.chip import (
    chip_yield,
    embedded_ram_yield,
    chip_yield_with_bisr,
)

__all__ = [
    "cell_yield",
    "cell_fault_prob",
    "row_fault_prob",
    "word_fault_prob",
    "stapper_yield",
    "defects_from_yield",
    "repair_probability",
    "repair_probability_2d",
    "bisr_yield",
    "bisr_yield_2d",
    "yield_curve",
    "MonteCarloYield",
    "simulate_yield",
    "simulate_yield_2d",
    "chip_yield",
    "embedded_ram_yield",
    "chip_yield_with_bisr",
]
