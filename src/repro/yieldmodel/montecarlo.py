"""Row-level Monte-Carlo yield validation.

The analytic Y_R (Fig. 4) rests on two modelling steps: Poisson defect
statistics per cell and the strict repairability condition.  This
module validates both at full Fig. 4 scale (1024-row arrays) with a
vectorised row-level simulation: defects land Poisson-distributed on
rows (regular and spare), and a trial is good when at most ``spares``
regular rows are hit and no spare row is hit — exactly the strict
goodness definition.  Unlike the bit-level BIST campaigns (which top
out around 10^2 cells x 10^2 trials), this runs 10^5 trials on the
real array geometry in milliseconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class MonteCarloYield:
    """Result of one Monte-Carlo yield estimate.

    ``trials == 0`` is a legal *container* state (an empty shard, or a
    campaign whose every shard was lost) but has no estimate: the
    estimate and both intervals raise ``ValueError`` rather than
    dividing by zero.  Use :meth:`merged` to combine per-shard results.
    """

    trials: int
    good: int

    @property
    def yield_estimate(self) -> float:
        if self.trials < 1:
            raise ValueError(
                "yield estimate undefined with zero trials"
            )
        return self.good / self.trials

    def confidence_95(self) -> float:
        """Half-width of the 95% normal-approximation interval.

        The normal approximation collapses to exactly 0.0 at
        p ∈ {0, 1} — observing no failures is not proof of none — and
        is anti-conservative for small-trial shards generally; use
        :meth:`wilson_interval` there.
        """
        p = self.yield_estimate
        return 1.96 * (p * (1 - p) / self.trials) ** 0.5

    def wilson_interval(self, z: float = 1.96) -> Tuple[float, float]:
        """The Wilson score interval ``(low, high)``.

        Stays informative where the normal interval degenerates: at
        p = 1 with n trials the upper bound is 1 but the lower bound is
        n/(n + z²) < 1, the correct small-sample scepticism.
        """
        if self.trials < 1:
            raise ValueError(
                "confidence interval undefined with zero trials"
            )
        n = self.trials
        p = self.good / n
        denominator = 1.0 + z * z / n
        centre = (p + z * z / (2 * n)) / denominator
        half = (z / denominator) * math.sqrt(
            p * (1 - p) / n + z * z / (4 * n * n)
        )
        return (max(0.0, centre - half), min(1.0, centre + half))

    @classmethod
    def merged(cls, parts: Iterable["MonteCarloYield"]) -> "MonteCarloYield":
        """Pool per-shard results; exact because trials are disjoint."""
        parts = list(parts)
        return cls(trials=sum(p.trials for p in parts),
                   good=sum(p.good for p in parts))


def simulate_yield(
    rows: int,
    spares: int,
    bpw: int,
    bpc: int,
    n_defects: float,
    growth_factor: float = 1.0,
    trials: int = 100_000,
    rng: Optional[np.random.Generator] = None,
) -> MonteCarloYield:
    """Monte-Carlo estimate of the BISR yield.

    Mirrors :func:`repro.yieldmodel.repair_prob.bisr_yield`: the grown
    module absorbs ``n_defects * growth_factor`` defects on average;
    defects land uniformly over the grown area, split between the cell
    array (regular + spare rows) and the BIST/BISR overhead area, where
    any hit is fatal under strict goodness.
    """
    if rows < 1 or spares < 0 or trials < 1:
        raise ValueError("rows, spares, trials must be positive")
    if n_defects < 0 or growth_factor < 1.0:
        raise ValueError("bad defect count or growth factor")
    rng = rng or np.random.default_rng(0)
    bits_row = bpw * bpc
    array_cells = (rows + spares) * bits_row
    grown_cells = rows * bits_row * growth_factor
    overhead_cells = max(grown_cells - array_cells, 0.0)
    mean_total = n_defects * growth_factor

    mean_overhead = mean_total * overhead_cells / grown_cells
    mean_array = mean_total - mean_overhead

    # Defects per trial, then multinomial split over rows.
    total_rows = rows + spares
    counts = rng.poisson(mean_array, size=trials)
    good = 0
    # Vectorised by unique defect counts (Poisson support is small).
    overhead_ok = rng.poisson(mean_overhead, size=trials) == 0
    for count in np.unique(counts):
        index = np.nonzero(counts == count)[0]
        if count == 0:
            good += int(np.count_nonzero(overhead_ok[index]))
            continue
        # Each defect picks a row uniformly.
        hits = rng.integers(0, total_rows, size=(len(index), count))
        spare_hit = (hits >= rows).any(axis=1)
        faulty_regular = np.array([
            len(np.unique(row_hits[row_hits < rows]))
            for row_hits in hits
        ])
        ok = (~spare_hit) & (faulty_regular <= spares) & \
            overhead_ok[index]
        good += int(np.count_nonzero(ok))
    return MonteCarloYield(trials=trials, good=good)


def simulate_yield_2d(
    rows: int,
    bpw: int,
    bpc: int,
    spares_r: int,
    spares_c: int,
    n_defects: float,
    growth_factor: float = 1.0,
    trials: int = 20_000,
    rng: Optional[np.random.Generator] = None,
    row_defect_frac: float = 0.0,
    col_defect_frac: float = 0.0,
    node_budget: int = 4_000,
) -> MonteCarloYield:
    """Monte-Carlo 2-D repairability with the real allocator in the loop.

    Each trial draws Poisson defects over the grown module.  Overhead
    hits and *any* hit on a spare row, spare column or spare-by-spare
    cell are fatal (strict goodness).  Array defects are, independently,
    a whole-row defect with probability ``row_defect_frac``, a
    whole-column defect with probability ``col_defect_frac``, else a
    single-cell defect.  Line defects commit a spare of the matching
    kind outright; residual cell faults go through the same must-repair
    + cover analysis the hardware uses (:func:`repro.bisr.allocate.
    allocate`), with two exact fast paths first:

    * more faulty row (column) lines than spare rows (columns) — bad;
    * at most ``spares_left_r + spares_left_c`` distinct residual cells
      — always coverable (see ``repair_probability_2d``), good.

    Because line defects are only repairable by a spare of their own
    kind, a rows-only configuration can never repair a column-line
    defect — which is what creates the crossover where a row+column
    spare mix beats rows-only on cost per good bit.
    """
    if rows < 1 or trials < 1:
        raise ValueError("rows and trials must be positive")
    if spares_r < 0 or spares_c < 0:
        raise ValueError("spare counts must be non-negative")
    if n_defects < 0 or growth_factor < 1.0:
        raise ValueError("bad defect count or growth factor")
    if not 0.0 <= row_defect_frac + col_defect_frac <= 1.0:
        raise ValueError(
            "row/col defect fractions must be a sub-probability")
    from repro.bisr.allocate import allocate

    rng = rng or np.random.default_rng(0)
    cols = bpw * bpc
    total_rows = rows + spares_r
    total_cols = cols + spares_c
    array_cells = total_rows * total_cols
    grown_cells = rows * cols * growth_factor
    overhead_cells = max(grown_cells - array_cells, 0.0)
    denom = max(grown_cells, float(array_cells))
    mean_total = n_defects * growth_factor
    mean_overhead = mean_total * overhead_cells / denom
    mean_array = mean_total - mean_overhead

    counts = rng.poisson(mean_array, size=trials)
    overhead_ok = rng.poisson(mean_overhead, size=trials) == 0
    good = int(np.count_nonzero(overhead_ok[counts == 0]))
    for trial in np.nonzero(counts > 0)[0]:
        if not overhead_ok[trial]:
            continue
        count = int(counts[trial])
        kinds = rng.random(count)
        row_lines = set()
        col_lines = set()
        cells = set()
        bad = False
        for kind in kinds:
            if kind < row_defect_frac:
                r = int(rng.integers(0, total_rows))
                if r >= rows:
                    bad = True
                    break
                row_lines.add(r)
            elif kind < row_defect_frac + col_defect_frac:
                c = int(rng.integers(0, total_cols))
                if c >= cols:
                    bad = True
                    break
                col_lines.add(c)
            else:
                r = int(rng.integers(0, total_rows))
                c = int(rng.integers(0, total_cols))
                if r >= rows or c >= cols:
                    bad = True
                    break
                cells.add((r, c))
        if bad:
            continue
        if len(row_lines) > spares_r or len(col_lines) > spares_c:
            continue
        left_r = spares_r - len(row_lines)
        left_c = spares_c - len(col_lines)
        residual = [(r, c) for r, c in cells
                    if r not in row_lines and c not in col_lines]
        if len(residual) <= left_r + left_c:
            good += 1
            continue
        plan = allocate(sorted(residual), rows, cols, left_r, left_c,
                        node_budget=node_budget)
        if plan.repairable:
            good += 1
    return MonteCarloYield(trials=trials, good=good)


def validate_against_analytic(
    rows: int,
    spares: int,
    bpw: int,
    bpc: int,
    defect_counts: Sequence[float],
    growth_factor: float = 1.0,
    trials: int = 50_000,
) -> list:
    """(defects, analytic, monte-carlo, |gap|) rows for reporting."""
    from repro.yieldmodel.repair_prob import bisr_yield

    out = []
    rng = np.random.default_rng(7)
    for n in defect_counts:
        analytic = bisr_yield(rows, spares, bpw, bpc, n, growth_factor)
        mc = simulate_yield(rows, spares, bpw, bpc, n, growth_factor,
                            trials=trials, rng=rng)
        out.append((n, analytic, mc.yield_estimate,
                    abs(analytic - mc.yield_estimate)))
    return out
