"""Repairability probability R and the BISR yield Y_R (Fig. 4).

"A defect pattern can be repaired successfully if and only if the
number of faulty rows is at most equal to the number of spare rows, and
the spares required are themselves fault-free. ... we adopt a stricter
definition of 'goodness' from the standpoints of both manufacturing
yield and field reliability, namely, that all the spares should be
fault-free."

Fig. 4 plots Y_R against the number of defects injected into the
*nonredundant* array; "for a RAM with redundancy and BISR, the total
number of defects shown in the x axis must be multiplied by the growth
factor (i.e., the area of the redundant array with BISR divided by the
area of the corresponding nonredundant array)".
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from scipy import stats

from repro.yieldmodel.poisson import lambda_per_cell, row_fault_prob


def repair_probability(rows: int, spares: int, lambda_c: float,
                       bits_per_row: int) -> float:
    """R = P(#faulty regular rows <= spares) * P(all spares fault-free).

    Faulty-row counts are Binomial(rows, p_row) under cell
    independence.
    """
    if rows < 1 or spares < 0:
        raise ValueError("rows must be positive, spares non-negative")
    p_row = row_fault_prob(lambda_c, bits_per_row)
    if spares == 0:
        return float((1.0 - p_row) ** rows)
    p_repairable = float(stats.binom.cdf(spares, rows, p_row))
    p_spares_good = float((1.0 - p_row) ** spares)
    return p_repairable * p_spares_good


def bisr_yield(
    rows: int,
    spares: int,
    bpw: int,
    bpc: int,
    n_defects: float,
    growth_factor: float = 1.0,
) -> float:
    """Y_R for ``n_defects`` injected into the nonredundant array.

    The redundant array (with its BIST/BISR circuitry) is
    ``growth_factor`` times larger, so it absorbs proportionally more
    defects; the per-cell rate is computed over the grown cell count so
    the BIST/BISR circuitry's share of the silicon is charged to the
    array (defects there are treated as fatal row faults would be —
    a conservative accounting, matching the paper's strict goodness).
    """
    if n_defects < 0:
        raise ValueError("n_defects must be non-negative")
    if growth_factor < 1.0:
        raise ValueError("growth factor cannot shrink the array")
    bits_per_row = bpw * bpc
    total_cells = rows * bits_per_row
    grown_defects = n_defects * growth_factor
    # Defects land uniformly over the grown area; the cell array is
    # total_cells + spare cells of it.
    array_cells = (rows + spares) * bits_per_row
    area_cells_equivalent = total_cells * growth_factor
    lambda_c = lambda_per_cell(grown_defects, max(array_cells, 1))
    # Non-array (BIST/BISR/strap) share of the grown area: defects
    # there kill the module outright under strict goodness.
    overhead_cells = max(area_cells_equivalent - array_cells, 0.0)
    overhead_defects = grown_defects * overhead_cells / area_cells_equivalent
    y_overhead = math.exp(-overhead_defects)
    return repair_probability(rows, spares, lambda_c, bits_per_row) * \
        y_overhead


def repair_probability_2d(rows: int, cols: int, spares_r: int,
                          spares_c: int, lambda_c: float) -> float:
    """Analytic lower bound on 2-D repairability R(rows, cols, sr, sc).

    The exact 2-D repairability has no closed form (minimum line cover
    is NP-hard), but a sharp sufficient condition exists: ``n`` distinct
    faulty cells are *always* coverable when ``n <= sr + sc`` (cover up
    to ``sr`` of the affected rows; at most ``n - sr`` faults remain,
    each alone in its row, so columns cover them).  With cell faults
    Poisson over the regular array:

        R >= P(N <= sr + sc) * P(all spare cells fault-free)

    where the spare cells are ``sr`` full rows, ``sc`` full columns and
    the ``sr * sc`` intersection — the same strict goodness as the
    row-only model.  For ``spares_c = 0`` this is slightly *stricter*
    than :func:`repair_probability` (cell faults are not merged per
    row), making it a consistent lower bound everywhere.
    """
    if rows < 1 or cols < 1:
        raise ValueError("rows and cols must be positive")
    if spares_r < 0 or spares_c < 0:
        raise ValueError("spare counts must be non-negative")
    if lambda_c < 0:
        raise ValueError("lambda_c must be non-negative")
    mean_regular = lambda_c * rows * cols
    p_coverable = float(
        stats.poisson.cdf(spares_r + spares_c, mean_regular))
    spare_cells = spares_r * cols + spares_c * rows + spares_r * spares_c
    p_spares_good = math.exp(-lambda_c * spare_cells)
    return p_coverable * p_spares_good


def bisr_yield_2d(
    rows: int,
    bpw: int,
    bpc: int,
    spares_r: int,
    spares_c: int,
    n_defects: float,
    growth_factor: float = 1.0,
) -> float:
    """2-D analogue of :func:`bisr_yield` (a lower bound, see
    :func:`repair_probability_2d`), with the same grown-area defect
    accounting: overhead (BIST/BISR/steer/strap) hits are fatal."""
    if n_defects < 0:
        raise ValueError("n_defects must be non-negative")
    if growth_factor < 1.0:
        raise ValueError("growth factor cannot shrink the array")
    cols = bpw * bpc
    total_cells = rows * cols
    grown_defects = n_defects * growth_factor
    array_cells = (rows + spares_r) * (cols + spares_c)
    area_cells_equivalent = total_cells * growth_factor
    lambda_c = lambda_per_cell(grown_defects, max(array_cells, 1))
    overhead_cells = max(area_cells_equivalent - array_cells, 0.0)
    overhead_defects = (grown_defects * overhead_cells
                        / max(area_cells_equivalent, 1.0))
    y_overhead = math.exp(-overhead_defects)
    return repair_probability_2d(
        rows, cols, spares_r, spares_c, lambda_c) * y_overhead


def yield_curve(
    rows: int,
    bpw: int,
    bpc: int,
    spare_counts: Sequence[int],
    defect_counts: Sequence[float],
    growth_factors: Sequence[float] = None,
) -> List[Tuple[int, List[float]]]:
    """Fig. 4 data: one yield-vs-defects series per spare count.

    Args:
        spare_counts: e.g. (0, 4, 8, 16).
        defect_counts: x axis (defects in the nonredundant array).
        growth_factors: one per spare count; defaults to area-proportional
            ``(rows + spares) / rows`` when layouts are not available.
    """
    if growth_factors is None:
        growth_factors = [(rows + s) / rows for s in spare_counts]
    if len(growth_factors) != len(spare_counts):
        raise ValueError("one growth factor per spare count")
    curves = []
    for spares, growth in zip(spare_counts, growth_factors):
        series = [
            bisr_yield(rows, spares, bpw, bpc, n, growth)
            for n in defect_counts
        ]
        curves.append((spares, series))
    return curves
