"""Poisson defect statistics at cell/word/row granularity.

"Suppose we use the Poisson model of a single cell yield, i.e.
y = exp(-lambda_c), where lambda_c represents the average number of
faults per cell."  Injecting a total of ``n`` defects into an array of
``N`` cells gives lambda_c = n/N; all word- and row-level quantities
follow from independence of cells under the Poisson model.
"""

from __future__ import annotations

import math


def cell_yield(lambda_c: float) -> float:
    """P(one cell is fault-free) = exp(-lambda_c)."""
    if lambda_c < 0:
        raise ValueError("lambda_c must be non-negative")
    return math.exp(-lambda_c)


def cell_fault_prob(lambda_c: float) -> float:
    """P(one cell has at least one fault)."""
    return 1.0 - cell_yield(lambda_c)


def word_fault_prob(lambda_c: float, bpw: int) -> float:
    """P(a bpw-bit word contains a faulty cell)."""
    if bpw < 1:
        raise ValueError("bpw must be positive")
    return 1.0 - math.exp(-lambda_c * bpw)


def row_fault_prob(lambda_c: float, bits_per_row: int) -> float:
    """P(a row of ``bits_per_row`` cells contains a faulty cell).

    For the paper's organisation a row holds bpw * bpc cells.
    "The probability of not having a failing bit in a (bpw*bpc)-bit
    row is given by (cell yield)^(bpw*bpc)."
    """
    if bits_per_row < 1:
        raise ValueError("bits_per_row must be positive")
    return 1.0 - math.exp(-lambda_c * bits_per_row)


def lambda_per_cell(n_defects: float, total_cells: int) -> float:
    """Average faults per cell when ``n_defects`` land on the array."""
    if total_cells < 1:
        raise ValueError("total_cells must be positive")
    if n_defects < 0:
        raise ValueError("n_defects must be non-negative")
    return n_defects / total_cells
