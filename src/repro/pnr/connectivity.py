"""Net extraction from abutments (networkx graph of port contacts).

"The signals in adjacent modules are perfectly aligned and connected by
abutments" — so the electrical nets of an assembled macro are exactly
the connected components of the port-abutment graph.  This module
builds that graph and answers the two questions assembly verification
needs:

* which instance ports belong to one net (e.g. a bit line spanning
  precharge -> every array row -> column mux),
* whether an expected net is *continuous* (one component, not several
  disconnected islands that merely look aligned).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Tuple

import networkx as nx

from repro.layout.cell import Cell
from repro.pnr.abutment import abutting_ports

#: One endpoint: (instance name, port name).
Endpoint = Tuple[str, str]


def _through_key(port_name: str) -> str:
    """Normalise facing-edge twin names to their shared net key.

    The leaf/macro port convention names the feed-through twin of a
    port by inserting ``t`` (top) or ``r`` (right): ``bl``/``bl_t``,
    ``wl``/``wl_r``, ``bl_3``/``bl_t_3``.  Twins are internally
    connected (the signal runs straight through the cell), so they
    collapse to one key here.
    """
    parts = [p for p in port_name.split("_") if p not in ("t", "r")]
    return "_".join(parts)


def connectivity_graph(parent: Cell) -> "nx.Graph":
    """Graph over (instance, port) endpoints.

    Edges: abutments between instances, plus the internal feed-through
    connections between one instance's facing-edge twin ports (a bit
    line entering an array at the bottom exits at the top).
    """
    graph = nx.Graph()
    through: Dict[Tuple[str, str], List[Endpoint]] = {}
    for inst in parent.instances():
        label = inst.name or inst.cell.name
        for port in inst.ports():
            node = (label, port.name)
            graph.add_node(node, layer=port.layer)
            through.setdefault(
                (label, _through_key(port.name)), []
            ).append(node)
    for nodes in through.values():
        for a, b in zip(nodes, nodes[1:]):
            graph.add_edge(a, b)
    for name_a, port_a, name_b, port_b in abutting_ports(parent):
        graph.add_edge((name_a, port_a), (name_b, port_b))
    return graph


def extract_nets(parent: Cell, min_size: int = 2
                 ) -> List[FrozenSet[Endpoint]]:
    """Connected components of the abutment graph (the nets).

    Components below ``min_size`` are unconnected ports, reported by
    :func:`dangling_ports` instead.
    """
    graph = connectivity_graph(parent)
    return [
        frozenset(component)
        for component in nx.connected_components(graph)
        if len(component) >= min_size
    ]


def dangling_ports(parent: Cell,
                   ignore: Sequence[str] = ()) -> List[Endpoint]:
    """Ports with no abutment partner (candidates for routing).

    ``ignore`` filters port-name prefixes that legitimately terminate
    at the macro boundary (external pins).
    """
    graph = connectivity_graph(parent)
    out = []
    for node in graph.nodes:
        if graph.degree(node) == 0:
            _, port_name = node
            if any(port_name.startswith(p) for p in ignore):
                continue
            out.append(node)
    return sorted(out)


def net_spans_instances(parent: Cell, instance_names: Sequence[str],
                        port_prefix: str) -> bool:
    """Is there one net touching all the named instances through ports
    with the given prefix?

    The assembly check for a bit line: a single electrical net must
    span precharge row, array, and mux row.
    """
    wanted = set(instance_names)
    for net in extract_nets(parent):
        touched = {
            inst for inst, port in net if port.startswith(port_prefix)
        }
        if wanted <= touched:
            return True
    return False


def net_statistics(parent: Cell) -> Dict[str, int]:
    """Summary counts for reports: nets, endpoints, dangling ports."""
    graph = connectivity_graph(parent)
    components = list(nx.connected_components(graph))
    return {
        "endpoints": graph.number_of_nodes(),
        "abutments": graph.number_of_edges(),
        "nets": sum(1 for c in components if len(c) >= 2),
        "dangling": sum(1 for c in components if len(c) == 1),
    }
