"""The port-alignment heuristic.

"Suppose m I/O ports of a macrocell A need to be connected to m ports
of another macrocell B and that these ports are present on one edge of
each macrocell.  Then A and B will be placed such that these two edges
face each other with the corresponding ports in alignment. ... it
avoids the long computation involved in trying out all 64 pairs of
orientations between A and B."

:func:`align_ports` computes B's orientation and offset directly from
the two port edges — constant work instead of the 64-orientation sweep
— and reports the residual misalignment the stretching heuristic can
then remove.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.geometry import Point, Transform
from repro.geometry.transform import Orientation
from repro.layout.cell import Cell


def _port_edge(cell: Cell, port_names: Sequence[str]) -> str:
    """Which cell edge the named ports sit on: left/right/top/bottom.

    Raises:
        ValueError: when the ports do not share one boundary edge.
    """
    box = cell.bbox()
    if box is None:
        raise ValueError(f"cell {cell.name!r} is empty")
    edges = set()
    for name in port_names:
        rect = cell.port(name).rect
        if rect.x1 == rect.x2 == box.x1:
            edges.add("left")
        elif rect.x1 == rect.x2 == box.x2:
            edges.add("right")
        elif rect.y1 == rect.y2 == box.y1:
            edges.add("bottom")
        elif rect.y1 == rect.y2 == box.y2:
            edges.add("top")
        else:
            raise ValueError(
                f"port {name!r} of {cell.name!r} is not on a boundary edge"
            )
    if len(edges) != 1:
        raise ValueError(
            f"ports {list(port_names)} of {cell.name!r} span edges {edges}"
        )
    return edges.pop()


#: Orientation that turns B's port edge to face A's port edge, when A's
#: edge is the key and B's is the inner key.  Facing pairs: A right <->
#: B left, A top <-> B bottom, etc.
_FACING_ORIENT = {
    ("right", "left"): Orientation.R0,
    ("right", "right"): Orientation.MY,
    ("right", "bottom"): Orientation.R90,
    ("right", "top"): Orientation.MX90,
    ("top", "bottom"): Orientation.R0,
    ("top", "top"): Orientation.MX,
    ("top", "left"): Orientation.R270,
    ("top", "right"): Orientation.MY90,
}


@dataclass(frozen=True)
class AlignmentResult:
    """Output of the alignment heuristic."""

    transform: Transform
    misalignment: int          # residual sum of |offset| between pairs
    pairs: Tuple[Tuple[str, str], ...]


def align_ports(
    cell_a: Cell,
    cell_b: Cell,
    pairs: Sequence[Tuple[str, str]],
    gap: int = 0,
) -> AlignmentResult:
    """Place B so its ports face and align with A's.

    A stays at the origin.  Returns B's placement transform; the
    orientation is chosen directly from the two port edges, and the
    translation aligns the *median* port pair (the choice minimising
    total L1 misalignment of the rest).

    Args:
        cell_a: anchor cell (unmoved).
        cell_b: cell to place.
        pairs: (port_of_a, port_of_b) connections.
        gap: spacing left between the facing edges (routing channel).
    """
    if not pairs:
        raise ValueError("need at least one port pair")
    edge_a = _port_edge(cell_a, [a for a, _ in pairs])
    edge_b = _port_edge(cell_b, [b for _, b in pairs])

    # Normalise to A-edge in {right, top} by working in A coordinates.
    if edge_a in ("left", "bottom"):
        # Mirror the problem: solve for the opposite edge, then flip
        # the translation axis afterwards.
        mirrored = align_ports(
            _mirrored_view(cell_a, edge_a), cell_b,
            pairs, gap,
        )
        t = mirrored.transform
        box_a = cell_a.bbox()
        if edge_a == "left":
            flip = Transform(
                Orientation.MY, Point(box_a.x1 + box_a.x2, 0)
            )
        else:
            flip = Transform(
                Orientation.MX, Point(0, box_a.y1 + box_a.y2)
            )
        return AlignmentResult(
            transform=flip.compose(t),
            misalignment=mirrored.misalignment,
            pairs=tuple(pairs),
        )

    orient = _FACING_ORIENT[(edge_a, edge_b)]
    base = Transform(orient, Point(0, 0))

    # Where do B's ports land under the bare orientation?
    a_ports = [cell_a.port(a).rect.center for a, _ in pairs]
    b_ports = [
        cell_b.port(b).rect.transformed(base).center for _, b in pairs
    ]
    box_a = cell_a.bbox()
    box_b_oriented = None
    for _, rect in cell_b.shapes():
        r = rect.transformed(base)
        box_b_oriented = r if box_b_oriented is None else \
            box_b_oriented.union_bbox(r)
    full_b = cell_b.bbox().transformed(base)
    box_b_oriented = full_b

    if edge_a == "right":
        # B sits to the right of A: its left edge at A's right + gap.
        shift_x = box_a.x2 + gap - box_b_oriented.x1
        offsets = sorted(pa.y - pb.y for pa, pb in zip(a_ports, b_ports))
        shift_y = offsets[len(offsets) // 2]
    else:  # top
        shift_y = box_a.y2 + gap - box_b_oriented.y1
        offsets = sorted(pa.x - pb.x for pa, pb in zip(a_ports, b_ports))
        shift_x = offsets[len(offsets) // 2]

    transform = Transform(orient, Point(shift_x, shift_y))
    residual = 0
    for (a, b) in pairs:
        pa = cell_a.port(a).rect.center
        pb = cell_b.port(b).rect.transformed(transform).center
        residual += abs(pa.y - pb.y) if edge_a == "right" else \
            abs(pa.x - pb.x)
    return AlignmentResult(
        transform=transform, misalignment=residual, pairs=tuple(pairs)
    )


def _mirrored_view(cell: Cell, edge: str) -> Cell:
    """A mirrored copy of ``cell`` turning left->right / bottom->top."""
    box = cell.bbox()
    view = Cell(cell.name + "_mirror")
    if edge == "left":
        t = Transform(Orientation.MY, Point(box.x1 + box.x2, 0))
    else:
        t = Transform(Orientation.MX, Point(0, box.y1 + box.y2))
    for layer, rect in cell.shapes():
        view.add_shape(layer, rect.transformed(t))
    for port in cell.ports():
        view.add_port(port.transformed(t))
    for inst in cell.instances():
        view.add_instance(inst.cell, t.compose(inst.transform), inst.name)
    return view
