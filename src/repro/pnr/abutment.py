"""Abutment detection.

"During this structured design, no routing is necessary and the
signals in adjacent modules are perfectly aligned and connected by
abutments between macrocells."  :func:`abutting_ports` verifies the
claim on a placed assembly: two instance ports connect by abutment when
their (same-layer) port rectangles coincide or touch in the parent's
coordinates.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.layout.cell import Cell


def abutting_ports(parent: Cell) -> List[Tuple[str, str, str, str]]:
    """All abutment connections among the direct children of ``parent``.

    Returns tuples (instance_a, port_a, instance_b, port_b).  Ports
    connect when they share a layer and their rectangles intersect
    (zero-thickness edge ports coincide exactly on abutting edges).
    """
    placed = []
    for inst in parent.instances():
        label = inst.name or inst.cell.name
        for port in inst.ports():
            placed.append((label, port))
    found = []
    for i, (name_a, port_a) in enumerate(placed):
        for name_b, port_b in placed[i + 1:]:
            if name_a == name_b:
                continue
            if port_a.layer != port_b.layer:
                continue
            if port_a.rect.intersects(port_b.rect):
                found.append((name_a, port_a.name, name_b, port_b.name))
    return found


def unconnected_ports(parent: Cell, expected: List[str]) -> List[str]:
    """Which of the expected inter-block signals failed to abut.

    ``expected`` names signals (port names) that must connect by
    abutment somewhere in the assembly; returns those with no abutment.
    """
    connected = set()
    for _, port_a, _, port_b in abutting_ports(parent):
        connected.add(port_a)
        connected.add(port_b)
    return [name for name in expected if name not in connected]
