"""Macrocell place-and-route.

BISRAMGEN "sorts the rectangular macrocells in decreasing order of
areas and uses heuristics to make the overall layout 'as rectangular as
possible'", with two named heuristics — port alignment and stretching —
plus channel and over-the-cell (metal-3) routing.  The layout quality
is provably within (1 + epsilon) of optimal area for a fixed small
epsilon independent of memory size; the quality metrics here
(:func:`~repro.pnr.placer.placement_quality`) measure exactly that
ratio so the bench can check it.
"""

from repro.pnr.placer import (
    Block,
    Placement,
    place_decreasing_area,
    placement_quality,
)
from repro.pnr.port_align import align_ports, AlignmentResult
from repro.pnr.stretching import stretch_cell
from repro.pnr.router import ChannelRouter, Net, route_channel
from repro.pnr.abutment import abutting_ports
from repro.pnr.connectivity import (
    connectivity_graph,
    extract_nets,
    dangling_ports,
    net_spans_instances,
    net_statistics,
)

__all__ = [
    "Block",
    "Placement",
    "place_decreasing_area",
    "placement_quality",
    "align_ports",
    "AlignmentResult",
    "stretch_cell",
    "ChannelRouter",
    "Net",
    "route_channel",
    "abutting_ports",
    "connectivity_graph",
    "extract_nets",
    "dangling_ports",
    "net_spans_instances",
    "net_statistics",
]
