"""Decreasing-area macrocell placement with a rectangularity objective.

The placer packs rectangular macrocells onto shelves: blocks are sorted
in decreasing area (the paper's first step), the target outline width
is the square root of the total area (the "as rectangular as possible"
objective), and each block lands on the first shelf with room,
left-to-right.  The resulting outline's fill ratio and aspect ratio are
the quality metrics; for memory-shaped block sets (one dominant array
plus thin periphery) the fill ratio stays within a small constant of 1,
which is the paper's (1 + epsilon) optimality claim in practice.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.geometry import Point, Rect, Transform
from repro.layout.cell import Cell


@dataclass(frozen=True)
class Block:
    """One macrocell to place."""

    name: str
    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError(f"block {self.name!r} must have positive size")

    @property
    def area(self) -> int:
        return self.width * self.height

    @classmethod
    def from_cell(cls, cell: Cell) -> "Block":
        box = cell.bbox()
        if box is None or box.area == 0:
            raise ValueError(f"cell {cell.name!r} has no geometry")
        return cls(cell.name, box.width, box.height)


@dataclass
class Placement:
    """Placement result: block name -> location rectangle."""

    locations: Dict[str, Rect] = field(default_factory=dict)

    def outline(self) -> Rect:
        if not self.locations:
            raise ValueError("empty placement")
        box = None
        for rect in self.locations.values():
            box = rect if box is None else box.union_bbox(rect)
        return box

    def overlaps(self) -> List[Tuple[str, str]]:
        """Pairs of blocks whose placements overlap (must be empty)."""
        names = sorted(self.locations)
        bad = []
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                if self.locations[a].overlaps(self.locations[b]):
                    bad.append((a, b))
        return bad

    def transform_for(self, name: str) -> Transform:
        """Placement transform for a block (no rotation in shelf mode)."""
        rect = self.locations[name]
        return Transform(translation=Point(rect.x1, rect.y1))


def place_decreasing_area(
    blocks: Sequence[Block],
    target_width: Optional[int] = None,
    spacing: int = 0,
) -> Placement:
    """Shelf-pack blocks sorted by decreasing area.

    Without an explicit ``target_width`` the placer tries several
    candidate widths (the widest block, the widest block plus each
    distinct other width, and square-ish widths) and keeps the most
    rectangular result — the paper's "heuristics to make the overall
    layout as rectangular as possible".

    Args:
        blocks: macrocells to place (names must be unique).
        target_width: outline width to pack toward; None sweeps
            candidates.
        spacing: minimum gap between blocks (routing slack).
    """
    if not blocks:
        raise ValueError("nothing to place")
    names = [b.name for b in blocks]
    if len(set(names)) != len(names):
        raise ValueError("duplicate block names")
    if spacing < 0:
        raise ValueError("spacing must be non-negative")

    if target_width is None:
        widest = max(b.width for b in blocks)
        total_area = sum(b.area for b in blocks)
        candidates = {widest}
        for b in sorted(blocks, key=lambda b: -b.width)[:6]:
            candidates.add(widest + spacing + b.width)
        for factor in (1.0, 1.25, 1.6):
            candidates.add(
                max(widest, int(math.isqrt(total_area) * factor))
            )
        best = None
        best_key = None
        for width in sorted(candidates):
            attempt = _shelf_pack(blocks, width, spacing)
            outline = attempt.outline()
            key = (outline.area, abs(math.log(outline.aspect_ratio())))
            if best_key is None or key < best_key:
                best, best_key = attempt, key
        return best
    width = max(target_width, max(b.width for b in blocks))
    return _shelf_pack(blocks, width, spacing)


def _shelf_pack(blocks: Sequence[Block], width: int,
                spacing: int) -> Placement:
    """One shelf-packing pass at a fixed outline width."""
    ordered = sorted(blocks, key=lambda b: (-b.area, b.name))
    placement = Placement()
    shelves: List[List[int]] = []  # (y, height, cursor_x) triples
    shelf_meta: List[Tuple[int, int, int]] = []
    y_cursor = 0
    for block in ordered:
        placed = False
        for i, (shelf_y, shelf_h, cursor) in enumerate(shelf_meta):
            if block.height <= shelf_h and cursor + block.width <= width:
                placement.locations[block.name] = Rect.from_size(
                    Point(cursor, shelf_y), block.width, block.height
                )
                shelf_meta[i] = (shelf_y, shelf_h, cursor + block.width
                                 + spacing)
                placed = True
                break
        if not placed:
            placement.locations[block.name] = Rect.from_size(
                Point(0, y_cursor), block.width, block.height
            )
            shelf_meta.append(
                (y_cursor, block.height, block.width + spacing)
            )
            y_cursor += block.height + spacing
    return placement


@dataclass(frozen=True)
class PlacementQuality:
    """Area and shape quality of a placement."""

    outline_area: int
    block_area: int
    fill_ratio: float
    aspect_ratio: float

    @property
    def epsilon(self) -> float:
        """Area overhead over the block-area lower bound.

        The paper's provable-quality claim is outline area within
        (1 + epsilon) of optimal; optimal can never beat the sum of
        block areas, so this epsilon is a conservative bound.
        """
        return self.outline_area / self.block_area - 1.0


def placement_quality(placement: Placement,
                      blocks: Sequence[Block]) -> PlacementQuality:
    """Measure fill ratio and aspect ratio of a placement."""
    outline = placement.outline()
    block_area = sum(b.area for b in blocks)
    return PlacementQuality(
        outline_area=outline.area,
        block_area=block_area,
        fill_ratio=block_area / outline.area,
        aspect_ratio=outline.aspect_ratio(),
    )
