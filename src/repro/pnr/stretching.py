"""The stretching heuristic.

"Sometimes, one macrocell may need to be stretched relative to another
so as to cause better port alignment between the two macrocells,
thereby decreasing interconnect lengths by causing all or most of the
ports to be connected by abutments."

:func:`stretch_cell` inserts slack at chosen cut lines: every shape and
port entirely beyond a cut moves by that cut's stretch amount; shapes
*spanning* a cut grow so continuous wires (rails, bit lines) stay
continuous across the inserted space.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence, Tuple

from repro.geometry import Rect
from repro.layout.cell import Cell


def stretch_cell(
    cell: Cell,
    cuts: Sequence[Tuple[int, int]],
    axis: str = "y",
    name_suffix: str = "_stretched",
) -> Cell:
    """Return a stretched flat copy of ``cell``.

    Args:
        cell: source cell (flattened into the result).
        cuts: (position, amount) pairs; everything beyond ``position``
            on the chosen axis shifts by ``amount``; spanning shapes
            grow.  Positions are in the cell's coordinates, amounts
            must be non-negative.
        axis: "x" or "y".
    """
    if axis not in ("x", "y"):
        raise ValueError("axis must be 'x' or 'y'")
    ordered = sorted(cuts)
    if any(amount < 0 for _, amount in ordered):
        raise ValueError("stretch amounts must be non-negative")

    def shift_of(coord: int) -> int:
        return sum(amount for pos, amount in ordered if coord > pos)

    def stretch_rect(rect: Rect) -> Rect:
        if axis == "y":
            return Rect(
                rect.x1, rect.y1 + shift_of(rect.y1),
                rect.x2, rect.y2 + shift_of(rect.y2),
            )
        return Rect(
            rect.x1 + shift_of(rect.x1), rect.y1,
            rect.x2 + shift_of(rect.x2), rect.y2,
        )

    out = Cell(cell.name + name_suffix)
    for layer, rect in cell.flatten():
        out.add_shape(layer, stretch_rect(rect))
    for port in cell.ports():
        out.add_port(replace(port, rect=stretch_rect(port.rect)))
    return out
