"""Channel routing and over-the-cell (metal-3) routing.

BISRAMGEN "often uses over-the-cell routing with third metal, instead
of channel or global routing, to reduce the interconnect lengths and
delays"; the channel router remains for connections that cannot abut.
The channel router is the classic left-edge algorithm: nets sorted by
left endpoint are packed greedily into horizontal tracks; the channel
height is (track count) * (metal pitch).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.geometry import Rect
from repro.layout.cell import Cell
from repro.tech.process import Process


@dataclass(frozen=True)
class Net:
    """A two-sided channel net: pin x-positions on top and bottom."""

    name: str
    top_pins: Tuple[int, ...] = ()
    bottom_pins: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not self.top_pins and not self.bottom_pins:
            raise ValueError(f"net {self.name!r} has no pins")

    @property
    def span(self) -> Tuple[int, int]:
        xs = self.top_pins + self.bottom_pins
        return min(xs), max(xs)


@dataclass
class RoutedNet:
    """A net with its assigned track index."""

    net: Net
    track: int


class ChannelRouter:
    """Left-edge channel router for one horizontal channel."""

    def __init__(self, process: Process, layer: str = "metal2") -> None:
        self.process = process
        self.layer = layer
        self.pitch = process.rules.pitch(layer)

    def assign_tracks(self, nets: Sequence[Net]) -> List[RoutedNet]:
        """Greedy left-edge track assignment (no vertical conflicts
        modelled — doglegs are unnecessary for the RAM's bus-shaped
        channels)."""
        ordered = sorted(nets, key=lambda n: n.span[0])
        track_right: List[int] = []  # rightmost occupied x per track
        routed: List[RoutedNet] = []
        min_gap = self.process.rules.min_space(self.layer)
        for net in ordered:
            left, right = net.span
            placed = None
            for t, occupied in enumerate(track_right):
                if left > occupied + min_gap:
                    placed = t
                    break
            if placed is None:
                placed = len(track_right)
                track_right.append(right)
            else:
                track_right[placed] = right
            routed.append(RoutedNet(net=net, track=placed))
        return routed

    def channel_height(self, nets: Sequence[Net]) -> int:
        """Height (cu) of the channel the nets require."""
        routed = self.assign_tracks(nets)
        tracks = 1 + max((r.track for r in routed), default=0)
        return tracks * self.pitch + self.process.rules.min_space(self.layer)

    def build_channel_cell(self, nets: Sequence[Net],
                           name: str = "channel") -> Cell:
        """Emit the channel wiring as a layout cell.

        Horizontal trunks on the channel layer; vertical stubs drop to
        y=0 (bottom pins) and rise to the channel top (top pins) on the
        next metal up, with vias at the junctions.
        """
        routed = self.assign_tracks(nets)
        height = self.channel_height(nets)
        cell = Cell(name)
        width_rule = self.process.rules.min_width(self.layer)
        vertical_layer = self._vertical_layer()
        v_width = self.process.rules.min_width(vertical_layer)
        cut_layer = "via1" if self.layer == "metal1" else "via2"
        cut = self.process.rules.min_width(cut_layer)
        for item in routed:
            y = self.process.rules.min_space(self.layer) + \
                item.track * self.pitch
            left, right = item.net.span
            cell.add_shape(
                self.layer,
                Rect(left - width_rule, y, right + width_rule,
                     y + width_rule),
            )
            for x in item.net.bottom_pins:
                cell.add_shape(
                    vertical_layer,
                    Rect(x, 0, x + v_width, y + width_rule),
                )
                cell.add_shape(
                    cut_layer,
                    Rect(x, y, x + cut, y + cut),
                )
            for x in item.net.top_pins:
                cell.add_shape(
                    vertical_layer,
                    Rect(x, y, x + v_width, height),
                )
                cell.add_shape(
                    cut_layer,
                    Rect(x, y, x + cut, y + cut),
                )
        return cell

    def _vertical_layer(self) -> str:
        levels = {"metal1": "metal2", "metal2": "metal3",
                  "metal3": "metal2"}
        return levels[self.layer]


def route_channel(process: Process, nets: Sequence[Net],
                  layer: str = "metal2") -> Tuple[Cell, int]:
    """Convenience: route one channel, return (cell, height)."""
    router = ChannelRouter(process, layer)
    return router.build_channel_cell(nets), router.channel_height(nets)


def over_the_cell_route(
    process: Process,
    over: Cell,
    from_x: int,
    to_x: int,
    y: int,
    name: str = "otc",
) -> Cell:
    """A straight metal-3 wire across an existing macrocell.

    The paper's preferred trick: "over-the-cell routing with third
    metal, instead of channel or global routing".  The wire is checked
    against the macrocell's own metal-3 so it cannot short.
    """
    width = process.rules.min_width("metal3")
    space = process.rules.min_space("metal3")
    wire = Rect(min(from_x, to_x), y, max(from_x, to_x), y + width)
    for layer, rect in over.flatten():
        if layer == "metal3" and rect.area > 0:
            if wire.expanded(space - 1).intersects(rect):
                raise ValueError(
                    f"over-the-cell wire at y={y} conflicts with "
                    f"existing metal3 in {over.name!r} near "
                    f"({rect.x1},{rect.y1})"
                )
    cell = Cell(name)
    cell.add_shape("metal3", wire)
    return cell
