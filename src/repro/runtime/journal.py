"""Append-only JSONL checkpoint journal for campaign runs.

A campaign that takes hours must survive a Ctrl-C, an OOM kill, or a
power cut with nothing worse than losing the shard that was mid-write.
The journal gives exactly that guarantee with the simplest possible
format: one JSON object per line.

* The **header** line is written first, atomically (temp file +
  ``os.replace``), and carries a digest of the campaign fingerprint —
  name, shard count, seed, parameters, task identity.  Resuming against
  a journal whose digest disagrees is refused with a
  :class:`~repro.core.errors.ConfigError`: silently mixing shards from
  two different campaigns is the one corruption this format cannot
  detect after the fact.
* Each **shard** line is appended only when the shard reaches a final
  state (ok / failed / quarantined), then flushed and fsynced, so a
  line either exists completely or not at all — except the very last
  one, which a kill can tear.  ``_load`` therefore forgives a torn
  *final* line and rejects corruption anywhere earlier (that would mean
  the file was edited, not interrupted).

The journal never stores derived aggregates: resume re-reduces from the
per-shard results, so a resumed campaign is bit-identical to an
uninterrupted one by construction.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Mapping, Optional

from repro.core.canonical import stable_digest
from repro.core.durability import fsync_dir
from repro.core.errors import ConfigError

JOURNAL_VERSION = 1


def fingerprint_digest(fingerprint: Mapping) -> str:
    """Stable short digest of a campaign fingerprint mapping.

    The same canonical-JSON -> SHA-256 recipe as
    :meth:`~repro.core.config.RamConfig.digest` and the artifact
    store's bundle keys (:func:`repro.core.canonical.stable_digest`),
    truncated to the journal header's historical 16 characters.
    """
    return stable_digest(dict(fingerprint), 16)


class CheckpointJournal:
    """One campaign's checkpoint file.

    Usage: ``prior = journal.open(fingerprint, resume=...)`` returns the
    already-final shard payloads keyed by shard index (empty unless
    resuming), then ``journal.record(payload)`` appends each newly
    finalised shard, and ``journal.close()`` releases the handle.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._handle = None

    # -- lifecycle ----------------------------------------------------------

    def open(self, fingerprint: Mapping,
             resume: bool = False) -> Dict[int, dict]:
        """Create (or reopen) the journal; return journaled shards."""
        digest = fingerprint_digest(fingerprint)
        prior: Dict[int, dict] = {}
        if resume and self.path.exists():
            prior = self._load(digest)
        else:
            header = {
                "type": "header",
                "version": JOURNAL_VERSION,
                "digest": digest,
                "campaign": dict(fingerprint),
            }
            tmp = self.path.with_name(self.path.name + ".tmp")
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(header, sort_keys=True) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
            # The rename is atomic but not durable until the directory
            # entry itself is synced; without this a power cut can lose
            # the whole journal even though its bytes were fsynced.
            fsync_dir(self.path.parent)
        self._handle = open(self.path, "a", encoding="utf-8")
        return prior

    def record(self, payload: Mapping) -> None:
        """Append one finalised shard; durable once this returns."""
        if self._handle is None:
            raise ConfigError("journal.record() before journal.open()")
        line = json.dumps({"type": "shard", **payload}, sort_keys=True)
        self._handle.write(line + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # -- resume -------------------------------------------------------------

    def _load(self, digest: str) -> Dict[int, dict]:
        lines = self.path.read_text(encoding="utf-8").splitlines()
        if not lines:
            raise ConfigError(
                f"checkpoint {self.path} is empty; rerun without --resume"
            )
        header = self._parse_header(lines[0])
        if header.get("digest") != digest:
            raise ConfigError(
                f"checkpoint {self.path} belongs to a different campaign "
                f"(digest {header.get('digest')!r}, expected {digest!r}); "
                f"refusing to resume"
            )
        records: Dict[int, dict] = {}
        for lineno, line in enumerate(lines[1:], start=2):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if lineno == len(lines):
                    break  # torn final write from the interrupted run
                raise ConfigError(
                    f"checkpoint {self.path} is corrupt at line {lineno} "
                    f"(not a torn tail; refusing to guess)"
                ) from None
            if record.get("type") != "shard":
                continue
            payload = {k: v for k, v in record.items() if k != "type"}
            index = payload.get("index")
            if isinstance(index, int):
                records[index] = payload  # last record for an index wins
        return records

    def _parse_header(self, line: str) -> dict:
        try:
            header = json.loads(line)
        except json.JSONDecodeError:
            raise ConfigError(
                f"checkpoint {self.path} has no valid header line"
            ) from None
        if not isinstance(header, dict) or header.get("type") != "header":
            raise ConfigError(
                f"checkpoint {self.path} does not start with a header"
            )
        if header.get("version") != JOURNAL_VERSION:
            raise ConfigError(
                f"checkpoint {self.path} is journal version "
                f"{header.get('version')!r}; this runtime reads "
                f"version {JOURNAL_VERSION}"
            )
        return header
