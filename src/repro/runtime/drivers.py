"""Campaign drivers: the repo's long statistical workloads, sharded.

Each driver is a pair of module-level functions — a shard task
(executed in worker processes, so picklable by name and fed only
JSON-serializable ``params`` plus a :class:`~repro.runtime.runner.ShardSpec`)
and a reducer (executed once on the main process over the *ordered*
shard results) — plus a ``*_campaign`` factory building the
:class:`~repro.runtime.runner.CampaignSpec`.

Five workloads are wired through the runtime:

* **Monte-Carlo yield** (:func:`montecarlo_campaign`) — Fig. 4 scale
  row-level yield simulation, trials split evenly over shards.
* **2-D Monte-Carlo yield** (:func:`montecarlo2d_campaign`) — cell and
  line defects over a row+column spare mix, repairability decided by
  the real must-repair + branch-and-bound allocator.
* **Fault-injection repair** (:func:`repair_campaign`) — inject
  defects, run the supervised BIST/BISR escalation ladder, count
  repaired / degraded devices.
* **SPICE sizing sweep** (:func:`sizing_campaign`) — one
  :func:`~repro.circuit.sizing.balance_inverter` run per NMOS width;
  the workload whose shards can genuinely raise
  :class:`~repro.core.errors.SpiceConvergenceError`.
* **Signoff sweep** (:func:`signoff_campaign`) — compile one geometry
  on every tech node with signoff in ``degrade`` mode, one shard per
  node; each shard's journaled result carries the full structured
  :class:`~repro.verify.report.SignoffReport` dict.
* **Tech matrix** (:func:`techmatrix_campaign`) — the registry-era
  signoff sweep: one shard per (rule deck, port count) grid point,
  compiling the geometry single- and dual-port on every named deck.
  The campaign params embed each deck's content fingerprint, so the
  checkpoint journal invalidates when a deck file is edited — a
  resumed run never adopts shards compiled against stale rules.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.errors import ConfigError
from repro.runtime.runner import CampaignSpec, ShardSpec


def _validate_workload(defects: float, trials: int) -> None:
    """Reject bad parameters at spec-build time, on the main process.

    Anything that would fail identically in every shard must surface
    as a :class:`ConfigError` (CLI exit code 2) before a single worker
    is spawned, not as ``n_shards`` 'unexpected' losses afterwards.
    """
    if defects < 0:
        raise ConfigError(f"defect count must be >= 0, got {defects!r}")
    if trials < 1:
        raise ConfigError(f"trials must be >= 1, got {trials!r}")


def shard_trials(total: int, n_shards: int, index: int) -> int:
    """Trials assigned to shard ``index`` out of ``total``.

    Deterministic in (total, n_shards, index) only — never in worker
    count or completion order — and exact: the shard counts sum to
    ``total``, with the remainder spread over the lowest indices.
    """
    base, remainder = divmod(total, n_shards)
    return base + (1 if index < remainder else 0)


# ---------------------------------------------------------------------------
# Monte-Carlo yield (repro.yieldmodel.montecarlo)
# ---------------------------------------------------------------------------


def montecarlo_shard(params: dict, shard: ShardSpec) -> dict:
    from repro.yieldmodel.montecarlo import simulate_yield

    trials = shard_trials(params["trials"], shard.n_shards, shard.index)
    if trials == 0:
        return {"trials": 0, "good": 0}
    mc = simulate_yield(
        params["rows"], params["spares"], params["bpw"], params["bpc"],
        params["defects"], params.get("growth_factor", 1.0),
        trials=trials, rng=shard.rng(),
    )
    return {"trials": mc.trials, "good": mc.good}


def montecarlo_reduce(results: Sequence[Optional[dict]]) -> dict:
    from repro.yieldmodel.montecarlo import MonteCarloYield

    parts = [MonteCarloYield(trials=r["trials"], good=r["good"])
             for r in results if r is not None]
    merged = MonteCarloYield.merged(parts)
    aggregates = {"trials": merged.trials, "good": merged.good}
    if merged.trials:
        low, high = merged.wilson_interval()
        aggregates.update({
            "yield": merged.yield_estimate,
            "ci95": merged.confidence_95(),
            "wilson_low": low,
            "wilson_high": high,
        })
    return aggregates


def montecarlo_campaign(
    rows: int, spares: int, bpw: int, bpc: int, defects: float,
    trials: int = 100_000, n_shards: int = 8, seed: int = 0,
    growth_factor: float = 1.0,
) -> CampaignSpec:
    """Fig. 4 row-level yield simulation as a resumable campaign."""
    _validate_workload(defects, trials)
    return CampaignSpec(
        name="montecarlo-yield",
        task=montecarlo_shard,
        n_shards=n_shards,
        seed=seed,
        params={
            "rows": rows, "spares": spares, "bpw": bpw, "bpc": bpc,
            "defects": defects, "growth_factor": growth_factor,
            "trials": trials,
        },
        reduce=montecarlo_reduce,
    )


# ---------------------------------------------------------------------------
# 2-D Monte-Carlo yield (repro.yieldmodel.montecarlo + repro.bisr.allocate)
# ---------------------------------------------------------------------------


def montecarlo2d_shard(params: dict, shard: ShardSpec) -> dict:
    from repro.yieldmodel.montecarlo import simulate_yield_2d

    trials = shard_trials(params["trials"], shard.n_shards, shard.index)
    if trials == 0:
        return {"trials": 0, "good": 0}
    mc = simulate_yield_2d(
        params["rows"], params["bpw"], params["bpc"],
        params["spares_r"], params["spares_c"],
        params["defects"], params.get("growth_factor", 1.0),
        trials=trials, rng=shard.rng(),
        row_defect_frac=params.get("row_defect_frac", 0.0),
        col_defect_frac=params.get("col_defect_frac", 0.0),
        node_budget=params.get("node_budget", 4_000),
    )
    return {"trials": mc.trials, "good": mc.good}


def montecarlo2d_reduce(results: Sequence[Optional[dict]]) -> dict:
    # Same pooled-Bernoulli aggregate as the row-only driver.
    return montecarlo_reduce(results)


def montecarlo2d_campaign(
    rows: int, bpw: int, bpc: int, spares_r: int, spares_c: int,
    defects: float, trials: int = 20_000, n_shards: int = 8, seed: int = 0,
    growth_factor: float = 1.0, row_defect_frac: float = 0.0,
    col_defect_frac: float = 0.0, node_budget: int = 4_000,
) -> CampaignSpec:
    """2-D repairability simulation (allocator in the loop) as a
    resumable campaign.  Shard aggregates are bit-identical across
    worker counts and kill/resume because each shard draws from its own
    spawned SeedSequence and the reducer pools ordered results."""
    _validate_workload(defects, trials)
    if spares_r < 0 or spares_c < 0:
        raise ConfigError("spare counts must be >= 0")
    if not 0.0 <= row_defect_frac + col_defect_frac <= 1.0:
        raise ConfigError(
            "row/col defect fractions must sum to at most 1")
    return CampaignSpec(
        name="montecarlo-yield-2d",
        task=montecarlo2d_shard,
        n_shards=n_shards,
        seed=seed,
        params={
            "rows": rows, "bpw": bpw, "bpc": bpc,
            "spares_r": spares_r, "spares_c": spares_c,
            "defects": defects, "growth_factor": growth_factor,
            "trials": trials, "row_defect_frac": row_defect_frac,
            "col_defect_frac": col_defect_frac, "node_budget": node_budget,
        },
        reduce=montecarlo2d_reduce,
    )


# ---------------------------------------------------------------------------
# fault-injection repair (repro.memsim + repro.bisr)
# ---------------------------------------------------------------------------


def repair_shard(params: dict, shard: ShardSpec) -> dict:
    from repro.bist import IFA_9
    from repro.bisr import EscalationPolicy, RepairSupervisor
    from repro.memsim import BisrRam, DefectInjector, FaultMix

    rng = shard.py_rng()
    mix = FaultMix(column_defect=0.0,
                   intermittent=params.get("intermittent", 0.0))
    policy = EscalationPolicy(
        max_attempts=params.get("escalation_attempts", 2))
    supervisor = RepairSupervisor(IFA_9, bpw=params["bpw"], policy=policy)
    trials = shard_trials(params["trials"], shard.n_shards, shard.index)

    repaired = degraded = spares_used = unrepaired_rows = 0
    for _ in range(trials):
        device = BisrRam(rows=params["rows"], bpw=params["bpw"],
                         bpc=params["bpc"], spares=params["spares"])
        DefectInjector(rng=rng, mix=mix).inject(
            device.array, int(params["defects"]))
        outcome = supervisor.run(device)
        repaired += outcome.repaired
        degraded += outcome.degraded
        spares_used += outcome.spares_used
        if outcome.degraded:
            unrepaired_rows += len(outcome.unrepaired_rows)
    return {
        "trials": trials, "repaired": repaired, "degraded": degraded,
        "spares_used": spares_used, "unrepaired_rows": unrepaired_rows,
    }


def repair_reduce(results: Sequence[Optional[dict]]) -> dict:
    done = [r for r in results if r is not None]
    aggregates = {
        key: sum(r[key] for r in done)
        for key in ("trials", "repaired", "degraded", "spares_used",
                    "unrepaired_rows")
    }
    if aggregates["trials"]:
        aggregates["repaired_fraction"] = (
            aggregates["repaired"] / aggregates["trials"])
    return aggregates


def repair_campaign(
    rows: int, bpw: int, bpc: int, spares: int, defects: float,
    trials: int = 64, n_shards: int = 8, seed: int = 0,
    intermittent: float = 0.0, escalation_attempts: int = 2,
) -> CampaignSpec:
    """Supervised self-repair probability study as a campaign."""
    _validate_workload(defects, trials)
    return CampaignSpec(
        name="repair-probability",
        task=repair_shard,
        n_shards=n_shards,
        seed=seed,
        params={
            "rows": rows, "bpw": bpw, "bpc": bpc, "spares": spares,
            "defects": defects, "trials": trials,
            "intermittent": intermittent,
            "escalation_attempts": escalation_attempts,
        },
        reduce=repair_reduce,
    )


# ---------------------------------------------------------------------------
# SPICE sizing sweep (repro.circuit.sizing over repro.spice.engine)
# ---------------------------------------------------------------------------


def sizing_shard(params: dict, shard: ShardSpec) -> dict:
    from repro.circuit.sizing import balance_inverter
    from repro.tech import get_process

    widths = params["widths"]
    wn_um = widths[shard.index % len(widths)]
    sizing = balance_inverter(
        get_process(params["process"]), wn_um,
        load_ff=params.get("load_ff", 20.0),
        tolerance=params.get("tolerance", 0.05),
        max_iterations=params.get("max_iterations", 12),
    )
    return {
        "wn_um": sizing.wn_um, "wp_um": sizing.wp_um,
        "ratio": sizing.ratio, "rise_s": sizing.rise_s,
        "fall_s": sizing.fall_s, "imbalance": sizing.imbalance,
    }


def sizing_reduce(results: Sequence[Optional[dict]]) -> dict:
    done = [r for r in results if r is not None]
    aggregates = {"points": len(done)}
    if done:
        ratios = [r["ratio"] for r in done]
        imbalances = [r["imbalance"] for r in done]
        aggregates.update({
            "ratio_min": min(ratios),
            "ratio_max": max(ratios),
            "imbalance_mean": sum(imbalances) / len(imbalances),
            "imbalance_worst": max(imbalances),
        })
    return aggregates


def sizing_campaign(
    process: str = "cda07",
    widths: Sequence[float] = (0.6, 0.9, 1.2, 1.8),
    seed: int = 0, load_ff: float = 20.0, tolerance: float = 0.05,
    max_iterations: int = 12,
) -> CampaignSpec:
    """Rise/fall balancing sweep, one shard per NMOS width."""
    return CampaignSpec(
        name="sizing-sweep",
        task=sizing_shard,
        n_shards=len(tuple(widths)),
        seed=seed,
        params={
            "process": process, "widths": list(widths),
            "load_ff": load_ff, "tolerance": tolerance,
            "max_iterations": max_iterations,
        },
        reduce=sizing_reduce,
    )


# ---------------------------------------------------------------------------
# cross-node signoff sweep (repro.verify over repro.core.compiler)
# ---------------------------------------------------------------------------


def signoff_shard(params: dict, shard: ShardSpec) -> dict:
    import json

    from repro.core.config import RamConfig
    from repro.verify.report import SignoffReport

    processes = params["processes"]
    node = processes[shard.index % len(processes)]
    config = RamConfig(
        words=params["words"], bpw=params["bpw"], bpc=params["bpc"],
        spares=params["spares"], process=node,
        gate_size=params.get("gate_size", 1),
        strap_every=params.get("strap_every", 32),
    )
    cache_hit = False
    if params.get("cache_dir"):
        # Fetch through the artifact store: worker processes across
        # shards (and across resumed campaign runs) share compiled
        # macros instead of rebuilding identical geometry per node.
        from repro.service import ArtifactStore, compile_cached

        store = ArtifactStore(params["cache_dir"])
        bundle, cache_hit, _ = compile_cached(
            config, signoff="degrade", store=store)
        report = SignoffReport.from_dict(
            json.loads(bundle["signoff.json"].decode("utf-8")))
    else:
        from repro.core.compiler import compile_ram

        report = compile_ram(config, signoff="degrade").signoff
    return {
        "process": node,
        "clean": report.clean,
        "failure_class": report.failure_class,
        "findings": len(report.findings()),
        "cache_hit": cache_hit,
        "report": report.to_dict(),
    }


def signoff_reduce(results: Sequence[Optional[dict]]) -> dict:
    done = [r for r in results if r is not None]
    dirty = [r for r in done if not r["clean"]]
    aggregates = {
        "nodes": len(done),
        "clean_nodes": len(done) - len(dirty),
        "findings": sum(r["findings"] for r in done),
        "cache_hits": sum(1 for r in done if r.get("cache_hit")),
        "dirty": {r["process"]: r["failure_class"] for r in dirty},
    }
    return aggregates


def signoff_campaign(
    words: int, bpw: int, bpc: int, spares: int,
    processes: Sequence[str] = ("cda05", "mos06", "cda07", "mos08"),
    seed: int = 0, gate_size: int = 1, strap_every: int = 32,
    cache_dir: Optional[str] = None,
) -> CampaignSpec:
    """Full signoff of one geometry across tech nodes, one shard each.

    With ``cache_dir``, shards compile through the content-addressed
    artifact store — a resumed or repeated campaign serves untouched
    nodes from cache instead of recompiling them.
    """
    processes = list(processes)
    if not processes:
        raise ConfigError("signoff campaign needs at least one process")
    return CampaignSpec(
        name="signoff-sweep",
        task=signoff_shard,
        n_shards=len(processes),
        seed=seed,
        params={
            "words": words, "bpw": bpw, "bpc": bpc, "spares": spares,
            "processes": processes, "gate_size": gate_size,
            "strap_every": strap_every,
            "cache_dir": str(cache_dir) if cache_dir else None,
        },
        reduce=signoff_reduce,
    )


# ---------------------------------------------------------------------------
# tech matrix: rule deck x port count (repro.techreg over repro.core)
# ---------------------------------------------------------------------------


def techmatrix_shard(params: dict, shard: ShardSpec) -> dict:
    import hashlib
    import json

    from repro.core.config import RamConfig
    from repro.verify.report import SignoffReport

    for directory in params.get("tech_dirs") or ():
        # Shard tasks run in worker processes with a fresh registry;
        # any --tech-dir decks must be re-registered before resolving.
        from repro.techreg import default_registry

        default_registry().add_search_dir(directory)
    processes = params["processes"]
    ports_list = params["ports"]
    node = processes[shard.index // len(ports_list)]
    ports = ports_list[shard.index % len(ports_list)]
    config = RamConfig(
        words=params["words"], bpw=params["bpw"], bpc=params["bpc"],
        spares=params["spares"], process=node, ports=ports,
        gate_size=params.get("gate_size", 1),
        strap_every=params.get("strap_every", 32),
    )
    cache_hit = False
    if params.get("cache_dir"):
        from repro.service import ArtifactStore, compile_cached

        store = ArtifactStore(params["cache_dir"])
        bundle, cache_hit, _ = compile_cached(
            config, signoff="degrade", store=store)
        cif = bundle["macro.cif"]
        report = SignoffReport.from_dict(
            json.loads(bundle["signoff.json"].decode("utf-8")))
    else:
        from repro.core.compiler import compile_ram

        compiled = compile_ram(config, signoff="degrade")
        cif = compiled.cif_text().encode("utf-8")
        report = compiled.signoff
    return {
        "process": node,
        "ports": ports,
        "clean": report.clean,
        "failure_class": report.failure_class,
        "findings": len(report.findings()),
        "cif_sha256": hashlib.sha256(cif).hexdigest(),
        "cache_hit": cache_hit,
    }


def techmatrix_reduce(results: Sequence[Optional[dict]]) -> dict:
    done = [r for r in results if r is not None]
    dirty = [r for r in done if not r["clean"]]
    return {
        "points": len(done),
        "clean_points": len(done) - len(dirty),
        "findings": sum(r["findings"] for r in done),
        "cache_hits": sum(1 for r in done if r.get("cache_hit")),
        "dirty": {f"{r['process']}/p{r['ports']}": r["failure_class"]
                  for r in dirty},
        "cif_sha256": {f"{r['process']}/p{r['ports']}": r["cif_sha256"]
                       for r in done},
    }


def techmatrix_campaign(
    words: int, bpw: int, bpc: int, spares: int,
    processes: Sequence[str] = ("cda05", "mos06", "cda07", "mos08"),
    ports: Sequence[int] = (1, 2),
    seed: int = 0, gate_size: int = 1, strap_every: int = 32,
    cache_dir: Optional[str] = None,
    tech_dirs: Sequence[str] = (),
) -> CampaignSpec:
    """Compile one geometry on every (deck, port count) grid point.

    Deck names resolve through the technology registry, so registered
    descriptor files sweep alongside the builtins.  Each deck's
    content fingerprint is baked into the campaign params: editing a
    deck file changes the journal fingerprint, forcing a clean rerun
    instead of a silently stale ``--resume``.
    """
    from repro.tech.process import get_process
    from repro.techreg import default_registry

    tech_dirs = [str(d) for d in tech_dirs]
    for directory in tech_dirs:
        default_registry().add_search_dir(directory)
    processes = list(processes)
    ports = [int(p) for p in ports]
    if not processes:
        raise ConfigError("techmatrix campaign needs at least one deck")
    if not ports or any(p not in (1, 2) for p in ports):
        raise ConfigError(
            f"techmatrix port counts must be drawn from (1, 2), "
            f"got {ports!r}")
    fingerprints = {name: get_process(name).fingerprint()
                    for name in processes}
    return CampaignSpec(
        name="tech-matrix",
        task=techmatrix_shard,
        n_shards=len(processes) * len(ports),
        seed=seed,
        params={
            "words": words, "bpw": bpw, "bpc": bpc, "spares": spares,
            "processes": processes, "ports": ports,
            "gate_size": gate_size, "strap_every": strap_every,
            "deck_fingerprints": fingerprints,
            "tech_dirs": tech_dirs,
            "cache_dir": str(cache_dir) if cache_dir else None,
        },
        reduce=techmatrix_reduce,
    )
