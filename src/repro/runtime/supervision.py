"""Reusable supervision primitives for process-pool workloads.

Two very different subsystems supervise CPU-bound work on worker
processes: the batch :class:`~repro.runtime.runner.CampaignRunner`
(finite shard sets, run to completion) and the long-lived
:class:`~repro.service.backend.ProcessPoolBackend` behind the macro
server (requests arrive forever).  Both need the same four mechanisms,
so they live here, shape-agnostic:

* :class:`RetryPolicy` — bounded attempts with exponential backoff,
  plus the crash-retry budget that separates "try again" from
  "quarantine".
* :class:`CrashBlame` — solo-reflight crash accounting.  When a worker
  process dies, every task in flight is a *suspect*; suspects are
  re-flown alone so the next death identifies its killer, and a task
  that exceeds its crash budget is quarantined — it can never take a
  pool down again.
* :class:`DelayQueue` / :class:`DeadlineTable` — backoff scheduling
  and per-task wall-clock deadlines (a hung worker cannot be joined;
  it has to be found and killed).
* :func:`terminate_pool` — the only reliable way to stop hung or
  half-dead ``ProcessPoolExecutor`` workers.

Also home to :func:`classify_error`, the error-taxonomy mapper the
campaign journal and the service WAL both persist.
"""

from __future__ import annotations

import heapq
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from repro.core.errors import (
    ConfigError,
    RepairExhausted,
    ReproError,
    SpiceConvergenceError,
)

# ---------------------------------------------------------------------------
# error taxonomy
# ---------------------------------------------------------------------------

_TAXONOMY = (
    (ConfigError, "config"),
    (SpiceConvergenceError, "convergence"),
    (RepairExhausted, "repair_exhausted"),
    (ReproError, "repro"),
    (TimeoutError, "timeout"),
    (OSError, "io"),
)


def classify_error(error: BaseException) -> str:
    """Map an exception onto the supervision error taxonomy."""
    for errtype, name in _TAXONOMY:
        if isinstance(error, errtype):
            return name
    return "unexpected"


# ---------------------------------------------------------------------------
# retry policy
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff, per task.

    The same policy shape as
    :class:`~repro.bisr.escalation.EscalationPolicy`, applied one level
    up: attempts instead of test/repair cycles, seconds instead of
    simulated maintenance cycles.

    Attributes:
        max_attempts: dispatches per task before it is finalised as
            failed (``config`` errors never retry — they are
            deterministic misuse, not weather).
        backoff_base: seconds waited before the second attempt.
        backoff_factor: multiplier applied to the wait per attempt.
        crash_retries: times a task may take a worker down with it
            before being quarantined.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    crash_retries: int = 1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError("max_attempts must be >= 1")
        if self.backoff_base < 0 or self.backoff_factor < 1:
            raise ConfigError(
                "backoff_base must be >= 0 and backoff_factor >= 1"
            )
        if self.crash_retries < 0:
            raise ConfigError("crash_retries must be >= 0")

    def backoff_s(self, attempt: int) -> float:
        """Seconds to wait after failed attempt number ``attempt``."""
        return self.backoff_base * self.backoff_factor ** (attempt - 1)


# ---------------------------------------------------------------------------
# crash blame
# ---------------------------------------------------------------------------


class CrashBlame:
    """Solo-reflight crash accounting shared by runner and backend.

    When a pool breaks, guilt is ambiguous — several tasks were in
    flight.  :meth:`accuse` charges every suspect one crash and splits
    them into *quarantined* (budget exceeded; never dispatch again)
    and *suspects* (re-fly, but strictly alone, so the next death has
    exactly one candidate killer).

    Not thread-safe by itself; callers hold their own lock.
    """

    def __init__(self, crash_retries: int) -> None:
        if crash_retries < 0:
            raise ConfigError("crash_retries must be >= 0")
        self.crash_retries = crash_retries
        self._crashes: Counter = Counter()
        self._quarantined: set = set()

    def accuse(self, keys) -> Tuple[List[Hashable], List[Hashable]]:
        """Charge each key one crash; -> (quarantined, solo_suspects)."""
        quarantined: List[Hashable] = []
        suspects: List[Hashable] = []
        for key in keys:
            self._crashes[key] += 1
            if self._crashes[key] > self.crash_retries:
                self._quarantined.add(key)
                quarantined.append(key)
            else:
                suspects.append(key)
        return quarantined, suspects

    def crashes(self, key: Hashable) -> int:
        """How many worker deaths this key has been charged with."""
        return self._crashes[key]

    def is_quarantined(self, key: Hashable) -> bool:
        return key in self._quarantined

    @property
    def quarantined(self) -> frozenset:
        return frozenset(self._quarantined)


# ---------------------------------------------------------------------------
# scheduling helpers
# ---------------------------------------------------------------------------


class DelayQueue:
    """Tasks waiting out their backoff, ordered by eligibility time."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Hashable]] = []
        self._tiebreak = 0  # heap stability for equal etas

    def push(self, eligible_at: float, item: Hashable) -> None:
        self._tiebreak += 1
        heapq.heappush(self._heap, (eligible_at, self._tiebreak, item))

    def pop_ready(self, now: float) -> List[Hashable]:
        """Every item whose eligibility time has arrived, in order."""
        ready: List[Hashable] = []
        while self._heap and self._heap[0][0] <= now:
            ready.append(heapq.heappop(self._heap)[2])
        return ready

    def next_eta(self) -> Optional[float]:
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class DeadlineTable:
    """Per-token wall-clock deadlines (token is any hashable; the
    runner uses futures, the backend uses request keys)."""

    def __init__(self) -> None:
        self._deadlines: Dict[Hashable, float] = {}

    def arm(self, token: Hashable, deadline: float) -> None:
        self._deadlines[token] = deadline

    def disarm(self, token: Hashable) -> None:
        self._deadlines.pop(token, None)

    def overdue(self, now: float) -> List[Hashable]:
        return [t for t, eta in self._deadlines.items() if eta <= now]

    def clear(self) -> None:
        self._deadlines.clear()

    def __len__(self) -> int:
        return len(self._deadlines)

    def __bool__(self) -> bool:
        return bool(self._deadlines)


# ---------------------------------------------------------------------------
# pool teardown
# ---------------------------------------------------------------------------


def terminate_pool(pool) -> None:
    """Terminate a ``ProcessPoolExecutor`` and its workers, hung ones
    included.

    ``shutdown()`` alone leaves hung/killed workers running; the
    private-but-stable ``_processes`` map is the only way to reclaim
    them without abandoning ``ProcessPoolExecutor``.
    """
    if pool is None:
        return
    for process in list(getattr(pool, "_processes", {}).values() or []):
        try:
            process.terminate()
        except Exception:
            pass
    pool.shutdown(wait=False, cancel_futures=True)
