"""Crash-safe parallel campaign runtime.

* :mod:`~repro.runtime.runner` — the supervised runner:
  seed-sharded task units on a process pool, per-shard timeouts,
  bounded retry with exponential backoff, worker-crash quarantine,
  and graceful degradation into a :class:`CampaignResult`,
* :mod:`~repro.runtime.journal` — the append-only JSONL checkpoint
  journal behind ``--checkpoint`` / ``--resume``,
* :mod:`~repro.runtime.drivers` — the sharded workloads: Monte-Carlo
  yield, supervised fault-injection repair, SPICE sizing sweeps,
* :mod:`~repro.runtime.supervision` — the reusable supervision
  primitives (retry policy, crash blame, deadlines, pool teardown)
  shared with the service tier's process-pool build backend.
"""

from repro.runtime.journal import CheckpointJournal, fingerprint_digest
from repro.runtime.runner import (
    CampaignResult,
    CampaignRunner,
    CampaignSpec,
    ShardOutcome,
    ShardSpec,
)
from repro.runtime.supervision import (
    CrashBlame,
    DeadlineTable,
    DelayQueue,
    RetryPolicy,
    classify_error,
    terminate_pool,
)

__all__ = [
    "CampaignResult",
    "CampaignRunner",
    "CampaignSpec",
    "CheckpointJournal",
    "CrashBlame",
    "DeadlineTable",
    "DelayQueue",
    "RetryPolicy",
    "ShardOutcome",
    "ShardSpec",
    "classify_error",
    "fingerprint_digest",
    "terminate_pool",
]
