"""Crash-safe parallel campaign runtime.

* :mod:`~repro.runtime.runner` — the supervised runner:
  seed-sharded task units on a process pool, per-shard timeouts,
  bounded retry with exponential backoff, worker-crash quarantine,
  and graceful degradation into a :class:`CampaignResult`,
* :mod:`~repro.runtime.journal` — the append-only JSONL checkpoint
  journal behind ``--checkpoint`` / ``--resume``,
* :mod:`~repro.runtime.drivers` — the sharded workloads: Monte-Carlo
  yield, supervised fault-injection repair, SPICE sizing sweeps.
"""

from repro.runtime.journal import CheckpointJournal, fingerprint_digest
from repro.runtime.runner import (
    CampaignResult,
    CampaignRunner,
    CampaignSpec,
    RetryPolicy,
    ShardOutcome,
    ShardSpec,
    classify_error,
)

__all__ = [
    "CampaignResult",
    "CampaignRunner",
    "CampaignSpec",
    "CheckpointJournal",
    "RetryPolicy",
    "ShardOutcome",
    "ShardSpec",
    "classify_error",
    "fingerprint_digest",
]
