"""Supervised, crash-safe parallel campaign execution.

The statistical campaigns behind the paper's evaluation (Fig. 4 yield
curves, the repair-probability studies, SPICE sizing sweeps) are long
batch jobs, and before this module every one of them ran single-process
and in-memory: one :class:`~repro.core.errors.SpiceConvergenceError`,
one hung worker, or one Ctrl-C lost the whole run.  The runtime fixes
that with the same posture :mod:`repro.bisr.escalation` takes toward
faulty cells — anticipate the failure, bound the retry, degrade into a
structured result instead of dying:

* **Deterministic seed-sharding.**  A campaign is split into
  independently seeded shards via ``np.random.SeedSequence.spawn``;
  shard *i* always receives the child sequence with
  ``spawn_key == (i,)``, so aggregates are bit-identical across
  ``workers=1``, ``workers=N``, and a kill-then-resume run.
* **Supervised workers.**  Shards execute on a
  :class:`~concurrent.futures.ProcessPoolExecutor` with per-shard
  wall-clock timeouts.  A shard that raises is retried with exponential
  backoff (the policy shape of
  :class:`~repro.bisr.escalation.EscalationPolicy`); a shard that
  *kills its worker* breaks the pool, so the pool is rebuilt, the
  suspects are re-flown one at a time to separate the guilty shard from
  innocent bystanders, and a shard that crashes a worker more than
  ``crash_retries`` times is quarantined — it can never re-kill the
  pool.
* **Journaled checkpoints.**  Finalised shards are appended to a
  :class:`~repro.runtime.journal.CheckpointJournal`; an interrupted
  campaign resumes by adopting journaled outcomes and running only the
  rest.
* **Graceful degradation.**  The runner never raises for anticipated
  shard failures: it returns a :class:`CampaignResult` carrying partial
  aggregates, per-taxonomy error counts (the
  :mod:`repro.core.errors` taxonomy plus runner-side ``timeout`` and
  ``crash``), and a one-line diagnosis — the campaign-level mirror of
  :class:`~repro.bisr.escalation.DegradedResult`.
"""

from __future__ import annotations

import random
import time
from collections import Counter, deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.errors import ConfigError
from repro.runtime.journal import CheckpointJournal, fingerprint_digest

# The supervision mechanics (retry policy, crash blame, scheduling,
# pool teardown) are shared with the service tier's process-pool build
# backend; re-exported here because this module was their first home.
from repro.runtime.supervision import (  # noqa: F401 - re-exports
    CrashBlame,
    DeadlineTable,
    DelayQueue,
    RetryPolicy,
    classify_error,
    terminate_pool,
)

# ---------------------------------------------------------------------------
# specs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardSpec:
    """What one task unit receives: its identity and its RNG lineage.

    ``seed_seq`` is the ``SeedSequence`` child with
    ``spawn_key == (index,)`` — the sole randomness a shard may use, so
    results do not depend on worker count or completion order.  Retries
    of a shard receive the same stream (``attempt`` tells the task
    which try this is, should it want to vary strategy, not seeds).
    """

    index: int
    n_shards: int
    seed_seq: np.random.SeedSequence
    attempt: int = 1

    def rng(self) -> np.random.Generator:
        """The shard's numpy generator."""
        return np.random.default_rng(self.seed_seq)

    def py_rng(self) -> random.Random:
        """A stdlib ``random.Random`` on the same deterministic lineage
        (for the :mod:`repro.memsim` fault machinery)."""
        state = self.seed_seq.generate_state(4)
        return random.Random(int.from_bytes(state.tobytes(), "little"))


@dataclass(frozen=True)
class CampaignSpec:
    """A campaign: a picklable task fanned over ``n_shards`` seeds.

    Attributes:
        name: campaign identity (goes into the journal fingerprint).
        task: module-level callable ``task(params, shard) -> dict``
            returning a JSON-serializable result; must be picklable by
            name for process-pool dispatch.
        n_shards: task units the campaign is split into.
        seed: root entropy for ``SeedSequence.spawn``.
        params: JSON-serializable mapping handed to every shard.
        reduce: ``reduce(results) -> dict`` aggregating the *ordered*
            per-shard results (``None`` where a shard was lost); called
            once, on the main process, independent of completion order.
    """

    name: str
    task: Callable
    n_shards: int
    seed: int
    params: Mapping = field(default_factory=dict)
    reduce: Optional[Callable] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("campaign name must be non-empty")
        if self.n_shards < 1:
            raise ConfigError("n_shards must be >= 1")
        if not callable(self.task):
            raise ConfigError("task must be callable")
        if "<locals>" in getattr(self.task, "__qualname__", ""):
            raise ConfigError(
                "task must be a module-level callable (process-pool "
                "dispatch pickles it by name)"
            )

    def fingerprint(self) -> dict:
        """Identity of this campaign for the checkpoint journal."""
        return {
            "campaign": self.name,
            "n_shards": self.n_shards,
            "seed": self.seed,
            "task": f"{self.task.__module__}.{self.task.__qualname__}",
            "params": dict(self.params),
        }


# ---------------------------------------------------------------------------
# outcomes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardOutcome:
    """Final state of one shard.

    ``status`` is ``ok`` (result present), ``failed`` (retries
    exhausted; taxonomy/message say why), or ``quarantined`` (the shard
    kept killing workers and was banned from the pool).
    """

    index: int
    status: str
    attempts: int = 1
    taxonomy: Optional[str] = None
    message: Optional[str] = None
    progress: Optional[float] = None
    result: Optional[dict] = None
    from_journal: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def journal_payload(self) -> dict:
        data = asdict(self)
        data.pop("from_journal")
        return data


@dataclass(frozen=True)
class CampaignResult:
    """Outcome of a supervised campaign — possibly degraded, never lost.

    The campaign-level mirror of
    :class:`~repro.bisr.escalation.DegradedResult`: partial aggregates
    over the shards that completed, an error-taxonomy census of the
    ones that did not, and a one-line ``reason`` when degraded.
    """

    name: str
    n_shards: int
    completed: int
    failed: int
    quarantined: int
    resumed: int
    aggregates: dict
    error_counts: Dict[str, int]
    reason: str
    shards: Tuple[ShardOutcome, ...]

    @property
    def degraded(self) -> bool:
        return self.completed < self.n_shards

    @property
    def coverage(self) -> float:
        """Fraction of shards whose results made it into aggregates."""
        return self.completed / self.n_shards

    def to_dict(self) -> dict:
        data = asdict(self)
        data["degraded"] = self.degraded
        data["coverage"] = self.coverage
        return data

    def summary(self) -> str:
        import json

        head = (f"campaign {self.name}: {self.completed}/{self.n_shards} "
                f"shard(s) completed")
        if self.failed:
            head += f", {self.failed} failed"
        if self.quarantined:
            head += f", {self.quarantined} quarantined"
        if self.resumed:
            head += f", {self.resumed} resumed from checkpoint"
        lines = [head,
                 "aggregates: " + json.dumps(self.aggregates,
                                             sort_keys=True)]
        if self.error_counts:
            lines.append("errors: " + json.dumps(self.error_counts,
                                                 sort_keys=True))
        if self.reason:
            lines.append(f"DEGRADED: {self.reason}")
        return "\n".join(lines)


def _diagnose(outcomes: Tuple[ShardOutcome, ...], n_shards: int) -> str:
    """One line saying what was lost and to what, mirroring
    :meth:`RepairSupervisor._diagnose`."""
    lost = [o for o in outcomes if not o.ok]
    if not lost:
        return ""
    counts = Counter(o.taxonomy or "unexpected" for o in lost)
    parts = []
    for taxonomy in sorted(counts):
        part = f"{counts[taxonomy]} {taxonomy}"
        if taxonomy == "convergence":
            progresses = [o.progress for o in lost
                          if o.taxonomy == "convergence"
                          and o.progress is not None]
            if progresses:
                mean = sum(progresses) / len(progresses)
                part += f" (mean progress {100 * mean:.0f}%)"
        parts.append(part)
    return (f"{len(lost)}/{n_shards} shard(s) lost: "
            + ", ".join(parts))


# ---------------------------------------------------------------------------
# the worker entry point (top level: pickled by name)
# ---------------------------------------------------------------------------


def _execute_shard(task: Callable, params: dict, shard: ShardSpec) -> dict:
    """Run one shard in a worker; anticipated failures return, never
    raise, so typed error details survive the pickle boundary."""
    try:
        result = task(params, shard)
        return {"status": "ok", "result": result}
    except Exception as error:
        payload = {
            "status": "failed",
            "taxonomy": classify_error(error),
            "message": f"{type(error).__name__}: {error}",
        }
        progress = getattr(error, "progress", None)
        if isinstance(progress, float):
            payload["progress"] = progress
        return payload


# ---------------------------------------------------------------------------
# the runner
# ---------------------------------------------------------------------------


class CampaignRunner:
    """Executes a :class:`CampaignSpec` under supervision.

    Args:
        workers: process-pool size (>= 1).
        timeout_s: per-shard wall-clock budget, or None for unbounded.
            Enforcing a timeout on a hung worker requires killing the
            pool, so innocent in-flight shards are requeued (their
            results are deterministic; only wall-clock is lost).
        retry: bounded-retry/backoff/quarantine policy.
        checkpoint: path of the JSONL journal, or None to run
            journal-free.
        resume: adopt finalised shards from an existing journal instead
            of starting over (requires a matching fingerprint).
        poll_s: supervisor wake-up interval in seconds.
    """

    def __init__(
        self,
        workers: int = 1,
        timeout_s: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        checkpoint: Optional[str] = None,
        resume: bool = False,
        poll_s: float = 0.05,
    ) -> None:
        if workers < 1:
            raise ConfigError("workers must be >= 1")
        if timeout_s is not None and timeout_s <= 0:
            raise ConfigError("timeout_s must be positive (or None)")
        if poll_s <= 0:
            raise ConfigError("poll_s must be positive")
        self.workers = workers
        self.timeout_s = timeout_s
        self.retry = retry or RetryPolicy()
        self.checkpoint = checkpoint
        self.resume = resume
        self.poll_s = poll_s

    # -- public API ---------------------------------------------------------

    def run(self, spec: CampaignSpec) -> CampaignResult:
        """Run (or resume) the campaign; never raises for shard
        failures, only for configuration errors."""
        children = np.random.SeedSequence(spec.seed).spawn(spec.n_shards)
        outcomes: Dict[int, ShardOutcome] = {}
        journal = None
        if self.checkpoint is not None:
            journal = CheckpointJournal(self.checkpoint)
            prior = journal.open(spec.fingerprint(), resume=self.resume)
            for index, payload in prior.items():
                if 0 <= index < spec.n_shards:
                    outcomes[index] = ShardOutcome(from_journal=True,
                                                   **payload)
        resumed = len(outcomes)
        todo = [i for i in range(spec.n_shards) if i not in outcomes]
        try:
            if todo:
                self._supervise(spec, children, todo, outcomes, journal)
        finally:
            if journal is not None:
                journal.close()

        ordered = tuple(outcomes[i] for i in range(spec.n_shards))
        results = [o.result if o.ok else None for o in ordered]
        aggregates = spec.reduce(results) if spec.reduce else {}
        completed = sum(o.ok for o in ordered)
        quarantined = sum(o.status == "quarantined" for o in ordered)
        error_counts = dict(Counter(o.taxonomy or "unexpected"
                                    for o in ordered if not o.ok))
        return CampaignResult(
            name=spec.name,
            n_shards=spec.n_shards,
            completed=completed,
            failed=spec.n_shards - completed - quarantined,
            quarantined=quarantined,
            resumed=resumed,
            aggregates=aggregates,
            error_counts=error_counts,
            reason=_diagnose(ordered, spec.n_shards),
            shards=ordered,
        )

    # -- the supervision loop -----------------------------------------------

    def _supervise(self, spec, children, todo, outcomes, journal) -> None:
        attempts = {i: 0 for i in todo}
        blame = CrashBlame(self.retry.crash_retries)
        pending = deque(todo)
        delayed = DelayQueue()  # backoff: (eligible_time, index)
        solo = deque()  # crash suspects, re-flown one at a time
        in_flight: Dict[Future, int] = {}
        deadlines = DeadlineTable()
        pool: Optional[ProcessPoolExecutor] = None

        def finalize(outcome: ShardOutcome) -> None:
            outcomes[outcome.index] = outcome
            if journal is not None:
                journal.record(outcome.journal_payload())

        def fail_or_retry(index: int, taxonomy: str, message: str,
                          progress: Optional[float] = None) -> None:
            if (taxonomy != "config"
                    and attempts[index] < self.retry.max_attempts):
                eta = time.monotonic() \
                    + self.retry.backoff_s(attempts[index])
                delayed.push(eta, index)
            else:
                finalize(ShardOutcome(
                    index=index, status="failed",
                    attempts=attempts[index], taxonomy=taxonomy,
                    message=message, progress=progress,
                ))

        def handle_crash(suspects: List[int]) -> None:
            # Guilt is ambiguous when several shards were in flight, so
            # every suspect is re-flown alone; only a shard that crashes
            # a worker while flying solo (or repeatedly) is quarantined.
            quarantined, resuspects = blame.accuse(suspects)
            for index in quarantined:
                finalize(ShardOutcome(
                    index=index, status="quarantined",
                    attempts=attempts[index], taxonomy="crash",
                    message=(f"worker died {blame.crashes(index)} "
                             f"time(s) running this shard"),
                ))
            solo.extend(resuspects)

        def discard_pool() -> None:
            nonlocal pool
            terminate_pool(pool)
            pool = None

        def submit(index: int) -> None:
            nonlocal pool
            if pool is None:
                pool = ProcessPoolExecutor(max_workers=self.workers)
            attempts[index] += 1
            shard = ShardSpec(index=index, n_shards=spec.n_shards,
                              seed_seq=children[index],
                              attempt=attempts[index])
            try:
                future = pool.submit(_execute_shard, spec.task,
                                     dict(spec.params), shard)
            except BrokenExecutor:
                suspects = [index] + list(in_flight.values())
                in_flight.clear()
                deadlines.clear()
                discard_pool()
                handle_crash(suspects)
                return
            in_flight[future] = index
            if self.timeout_s is not None:
                deadlines.arm(future, time.monotonic() + self.timeout_s)

        while pending or delayed or solo or in_flight:
            now = time.monotonic()
            pending.extend(delayed.pop_ready(now))

            # Fill execution slots.  Crash suspects fly strictly alone
            # so the next pool death identifies its killer.
            if solo and not in_flight:
                submit(solo.popleft())
            elif not solo:
                while (pending and not solo
                       and len(in_flight) < self.workers):
                    submit(pending.popleft())

            if not in_flight:
                eta = delayed.next_eta()
                if eta is not None:
                    time.sleep(max(0.0, min(eta - time.monotonic(),
                                            self.poll_s)))
                continue

            done, _ = wait(list(in_flight), timeout=self.poll_s,
                           return_when=FIRST_COMPLETED)
            broken = False
            suspects: List[int] = []
            for future in done:
                index = in_flight.pop(future)
                deadlines.disarm(future)
                try:
                    payload = future.result()
                except BrokenExecutor:
                    broken = True
                    suspects.append(index)
                    continue
                except Exception as error:
                    # Runner-side failure (e.g. an unpicklable result):
                    # goes through the same retry ladder.
                    fail_or_retry(index, classify_error(error),
                                  f"{type(error).__name__}: {error}")
                    continue
                if payload["status"] == "ok":
                    finalize(ShardOutcome(
                        index=index, status="ok",
                        attempts=attempts[index],
                        result=payload["result"],
                    ))
                else:
                    fail_or_retry(index, payload["taxonomy"],
                                  payload["message"],
                                  payload.get("progress"))

            if broken:
                # The pool died under us: every other in-flight shard
                # is doomed (and a suspect) too.
                suspects.extend(in_flight.values())
                in_flight.clear()
                deadlines.clear()
                discard_pool()
                handle_crash(suspects)
                continue

            if self.timeout_s is not None and deadlines:
                now = time.monotonic()
                overdue = [f for f in deadlines.overdue(now)
                           if not f.done()]
                if overdue:
                    # The only way to stop a hung worker is to kill the
                    # pool; innocents are requeued at the front (their
                    # results are deterministic, only time is lost).
                    overdue_set = set(overdue)
                    innocents = [i for f, i in in_flight.items()
                                 if f not in overdue_set]
                    for future in overdue:
                        index = in_flight.pop(future)
                        fail_or_retry(
                            index, "timeout",
                            f"shard exceeded the {self.timeout_s:g}s "
                            f"wall-clock budget",
                        )
                    in_flight.clear()
                    deadlines.clear()
                    discard_pool()
                    for index in reversed(innocents):
                        pending.appendleft(index)

        if pool is not None:
            pool.shutdown(wait=True)
