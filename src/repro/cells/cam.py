"""TLB CAM cell: one stored address bit with parallel match logic.

The BISR circuit stores faulty row addresses in "a hardware translation
lookaside buffer (TLB) that performs an extremely fast, parallel address
comparison between the incoming address pattern and a set of stored
address patterns".  The cell is an SRAM-style storage pair plus an XOR
match stack that conditionally discharges a shared match line; a row of
``address_bits`` cells forms one TLB entry, and all rows compare
simultaneously — the parallelism that distinguishes BISRAMGEN from Chen
and Sunada's sequential comparison.
"""

from __future__ import annotations

from repro.cells.base import CellBuilder
from repro.cells.sram6t import HEIGHT_LAMBDA as ROW_PITCH
from repro.circuit.netlist import GND, Netlist
from repro.layout.cell import Cell
from repro.tech.process import Process

WIDTH_LAMBDA = 84
HEIGHT_LAMBDA = ROW_PITCH


def cam_cell(process: Process) -> Cell:
    """Generate the CAM bit cell at the SRAM row pitch."""
    b = CellBuilder("cam_bit", process)
    w, h = WIDTH_LAMBDA, HEIGHT_LAMBDA

    b.rect("metal1", 0, 0, w, 4)
    b.rect("metal1", 0, h - 4, w, h)

    # Search lines (true/complement) in metal2, full height.
    b.wire_v("metal2", 0, h, 6)
    b.wire_v("metal2", 0, h, 78)
    # Shared match line in metal3, full width.
    b.wire_h("metal3", 0, w, 24)

    # Storage inverter pair (as in the 6T cell, compacted).
    y_n, y_p = 10, 38
    b.rect("ndiff", 18, y_n - 2, 50, y_n + 2)
    b.rect("pdiff", 18, y_p - 2, 50, y_p + 2)
    b.rect("nwell", 13, y_p - 7, 55, y_p + 7)
    for x_gate in (28, 40):
        b.wire_v("poly", y_n - 4, y_p + 4, x_gate)
    for y, layer in ((y_n, "ndiff"), (y_p, "pdiff")):
        b.contact(layer, 20, y)
        b.contact(layer, 34, y)
        b.contact(layer, 48, y)
    b.wire_v("metal1", 0, y_n, 34)
    b.wire_v("metal1", y_p, h, 34)
    b.wire_v("metal1", y_n, y_p, 20)
    b.wire_v("metal1", y_n, y_p, 48)
    b.contact("poly", 28, 20)
    b.wire_h("metal1", 28, 48, 20, width_lam=4)
    b.contact("poly", 40, 31)
    b.wire_h("metal1", 20, 40, 31, width_lam=4)

    # Match stack: two series NMOS pulling the match line low on a
    # mismatch, gated by stored bit and search line respectively.
    b.rect("ndiff", 58, 8, 62, 30)
    b.rect("poly", 54, 13, 66, 15)
    b.rect("poly", 54, 21, 66, 23)
    b.contact("ndiff", 60, 10)
    b.wire_v("metal1", 0, 10, 60)
    b.contact("ndiff", 60, 27)
    b.via1(60, 27)
    b.via2(60, 27)  # the via2 landing pad reaches the match line band

    b.edge_port("sl", "metal2", "bottom", 4.5, 7.5, 0, "in")
    b.edge_port("slb", "metal2", "bottom", 76.5, 79.5, 0, "in")
    b.edge_port("match", "metal3", "left", 21.5, 26.5, 0, "out")
    b.edge_port("gnd", "metal1", "left", 0, 4, 0, "supply")
    b.edge_port("vdd", "metal1", "left", h - 4, h, 0, "supply")
    return b.finish()


def cam_match_netlist(process: Process, address_bits: int,
                      matchline_cap_f: float = 60e-15) -> Netlist:
    """Match-line discharge path for one TLB entry of ``address_bits``.

    Models the worst-case match decision: the match line, precharged
    high, discharges through one mismatching bit's two-NMOS stack.  Used
    by the TLB delay benchmark (the paper quotes ~1.2 ns at 0.7 um with
    4 spare rows).
    """
    if address_bits < 1:
        raise ValueError("address_bits must be positive")
    f = process.feature_um
    wn = 4 * f
    net = Netlist("cam_match")
    # One discharging stack (stored bit=1, search=1 mismatch).
    net.add_mosfet("match", "sl", "mid", process.nmos, wn)
    net.add_mosfet("mid", "stored", GND, process.nmos, wn)
    net.add_source("stored", process.vdd)
    # Match-line load: wire plus one stack drain junction per bit.
    per_bit_junction = 2e-15
    net.add_capacitor(
        "match", GND, matchline_cap_f + address_bits * per_bit_junction
    )
    return net
