"""Static row and column address decoders.

"The RAM layouts produced by BISRAMGEN use ... static row and column
address decoding" (conclusion).  A decoder cell is one k-input static
CMOS NAND (active-low output) whose address inputs run vertically over
the cell in metal3, so a column of row-decoder cells shares the address
bus by abutment; the paired word-line driver inverts the NAND output.
"""

from __future__ import annotations

from repro.cells.base import CellBuilder
from repro.cells.sram6t import HEIGHT_LAMBDA as ROW_PITCH
from repro.layout.cell import Cell
from repro.tech.process import Process


def _nand_decoder(name: str, process: Process, address_bits: int,
                  height: int) -> Cell:
    if address_bits < 1:
        raise ValueError("decoder needs at least one address bit")
    b = CellBuilder(name, process)
    pitch = 12
    first_x = 22
    w = first_x + pitch * (address_bits - 1) + 14
    h = height

    b.rect("metal1", 0, 0, w, 4)
    b.rect("metal1", 0, h - 4, w, h)

    # Series NMOS stack (output at the left end, GND at the right).
    y_n = 12
    b.rect("ndiff", 4, y_n - 2, w - 4, y_n + 2)
    b.contact("ndiff", 6, y_n)
    b.contact("ndiff", w - 6, y_n)
    b.wire_v("metal1", 0, y_n, w - 6)

    # Parallel PMOS row (output contact left, VDD right).
    y_p = h - 15
    b.rect("pdiff", 4, y_p - 2, w - 4, y_p + 2)
    b.rect("nwell", 0, y_p - 7, w, y_p + 7)
    b.contact("pdiff", 6, y_p)
    b.contact("pdiff", w - 6, y_p)
    b.wire_v("metal1", y_p, h, w - 6)

    # Gate columns, one per address bit, with metal3 address lines
    # running vertically over the cell.
    y_tap = (y_n + y_p) / 2
    for i in range(address_bits):
        x = first_x + i * pitch
        b.wire_v("poly", y_n - 4, y_p + 4, x)
        b.contact("poly", x, y_tap)
        b.via1(x, y_tap)
        b.via2(x, y_tap)
        b.wire_v("metal3", 0, h, x)
        b.edge_port(f"a{i}", "metal3", "bottom", x - 2.5, x + 2.5, 0, "in")
        b.edge_port(f"a{i}_t", "metal3", "top", x - 2.5, x + 2.5, h, "in")

    # Output strap: joins the NMOS and PMOS output terminals and exits
    # in metal2 on the left edge (toward the word-line driver).
    b.wire_v("metal1", y_n, y_p, 6)
    b.via1(6, y_tap)
    b.wire_h("metal2", 0, 6, y_tap)
    b.edge_port(
        "out", "metal2", "left", y_tap - 1.5, y_tap + 1.5, 0, "out"
    )
    b.edge_port("gnd", "metal1", "left", 0, 4, 0, "supply")
    b.edge_port("vdd", "metal1", "left", h - 4, h, 0, "supply")
    return b.finish()


def row_decoder_cell(process: Process, address_bits: int) -> Cell:
    """Row-decoder NAND at the SRAM row pitch."""
    return _nand_decoder("row_decoder", process, address_bits, ROW_PITCH)


def column_decoder_cell(process: Process, address_bits: int) -> Cell:
    """Column-decoder NAND (log2(bpc) inputs), taller for wiring room."""
    return _nand_decoder("column_decoder", process, address_bits, 56)
