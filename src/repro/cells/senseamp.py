"""Current-mode sense amplifier (paper Fig. 3).

"Fast memory access is achieved by using current-mode sensing ... a
minor current differential in the bl and blb lines latches the sense
amplifier.  In write mode, the sense amplifier is bypassed and the
bit-lines are directly accessed."

The layout is a cross-coupled NMOS latch with PMOS loads and an NMOS
tail device gated by the sense-enable signal; the netlist view is what
the Fig. 3 benchmark simulates.
"""

from __future__ import annotations

from repro.cells.base import CellBuilder
from repro.cells.sram6t import WIDTH_LAMBDA as COLUMN_PITCH
from repro.circuit.netlist import GND, Netlist
from repro.layout.cell import Cell
from repro.tech.process import Process

HEIGHT_LAMBDA = 100


def senseamp_cell(process: Process, gate_size: int = 1) -> Cell:
    """Generate the sense-amplifier cell at the bit-cell column pitch."""
    if gate_size < 1:
        raise ValueError("gate_size must be >= 1")
    b = CellBuilder("senseamp", process)
    w, h = COLUMN_PITCH, HEIGHT_LAMBDA

    b.rect("metal1", 0, 0, w, 4)          # GND
    b.rect("metal1", 0, h - 4, w, h)      # VDD
    b.wire_v("metal2", 0, h, 4)           # BL (data line after mux)
    b.wire_v("metal2", 0, h, 64)          # BLB

    # Cross-coupled NMOS pair.
    y_n = 23
    b.rect("ndiff", 14, y_n - 3, 54, y_n + 3)
    b.contact("ndiff", 18, y_n)
    b.contact("ndiff", 34, y_n)   # common tail node
    b.contact("ndiff", 50, y_n)

    # PMOS load pair.
    y_p = 73
    b.rect("pdiff", 14, y_p - 3, 54, y_p + 3)
    b.rect("nwell", 9, y_p - 10, 59, y_p + 10)
    b.contact("pdiff", 18, y_p)
    b.contact("pdiff", 34, y_p)
    b.contact("pdiff", 50, y_p)
    b.wire_v("metal1", y_p, h, 34)        # VDD strap

    # Gates run vertically across both pairs; cross-coupled in metal1.
    for x_gate in (25, 43):
        b.wire_v("poly", y_n - 5, y_p + 5, x_gate)
    b.contact("poly", 25, 34)
    b.wire_h("metal1", 25, 50, 34, width_lam=4)   # gate L -> out R
    b.contact("poly", 43, 41)
    b.wire_h("metal1", 18, 43, 41, width_lam=4)   # gate R -> out L

    # Output straps joining NMOS drains and PMOS loads.
    b.wire_v("metal1", y_n, y_p, 18)
    b.wire_v("metal1", y_n, y_p, 50)

    # Tail device gated by sense-enable.
    y_t = 11
    b.rect("ndiff", 26, y_t - 3, 42, y_t + 3)
    b.wire_v("poly", y_t - 5, y_t + 5, 34)
    b.contact("ndiff", 30, y_t)
    b.contact("ndiff", 38, y_t)
    b.wire_v("metal1", 0, y_t, 38)                # tail source to GND
    b.wire_v("metal1", y_t, y_n - 3, 30)
    b.wire_h("metal1", 30, 34, y_n - 3)           # tail drain to pair
    # Sense-enable to the right edge.
    b.wire_h("poly", 34, 48, 6)
    b.wire_v("poly", 6, y_t - 5, 34)
    b.contact("poly", 48, 9)
    b.wire_h("metal1", 48, w, 9)

    # Bit-line taps into the latch outputs.
    b.via1(4, 50)
    b.wire_h("metal1", 4, 18, 50)
    b.via1(64, 57)
    b.wire_h("metal1", 50, 64, 57)

    b.edge_port("bl", "metal2", "top", 2.5, 5.5, h)
    b.edge_port("blb", "metal2", "top", 62.5, 65.5, h)
    b.edge_port("se", "metal1", "right", 7.5, 10.5, w, "in")
    b.point_port("out", "metal1", 18, 60, "out")
    b.point_port("outb", "metal1", 50, 60, "out")
    b.edge_port("gnd", "metal1", "left", 0, 4, 0, "supply")
    b.edge_port("vdd", "metal1", "left", h - 4, h, 0, "supply")
    return b.finish()


def senseamp_netlist(process: Process, gate_size: int = 1,
                     bitline_cap_f: float = 200e-15) -> Netlist:
    """Netlist of the sense amp loaded by the bit-line capacitance.

    Nodes: ``bl``/``blb`` differential inputs, ``out``/``outb`` latch
    outputs, ``se`` sense enable.  The Fig. 3 benchmark drives a small
    differential onto the bit lines and measures the latch decision.
    """
    f = process.feature_um
    wn = (4 + 2 * gate_size) * f
    wp = (3 + gate_size) * f
    net = Netlist("senseamp")
    # Cross-coupled inverter latch on out/outb.
    net.add_inverter("out", "outb", process.nmos, process.pmos, wn, wp)
    net.add_inverter("outb", "out", process.nmos, process.pmos, wn, wp)
    # Pass devices coupling the bit lines into the latch when sensing.
    net.add_mosfet("bl", "se", "out", process.nmos, wn)
    net.add_mosfet("blb", "se", "outb", process.nmos, wn)
    # Bit-line loads.
    net.add_capacitor("bl", GND, bitline_cap_f)
    net.add_capacitor("blb", GND, bitline_cap_f)
    return net
