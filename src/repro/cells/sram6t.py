"""The 6T SRAM bit cell.

BISRAMGEN "implements the 6T SRAM cell layout that causes a near-zero
critical area for [fatal global] faults" (paper section VII).  The cell
here is a full six-transistor layout drawn on the scalable rule deck:

* two cross-coupled CMOS inverters (vertical poly gates, horizontal
  diffusion strips, metal-1 cross-couple wiring),
* two NMOS access transistors at the cell edges (vertical diffusion,
  horizontal poly gate stubs),
* metal-2 bit lines spanning the full cell height,
* a metal-3 word line spanning the full cell width, strapped down to the
  access gate poly through a via stack — the strapped-word-line style
  that keeps the global WL off the poly layer (this is also what gives
  the near-zero fatal critical area: no global net is drawn in a single
  wide unbroken strip across the cell),
* metal-1 GND and VDD rails on the bottom and top edges, shared between
  vertically abutting rows when odd rows are mirrored.

The cell is 68 x 48 lambda and abuts on all four sides at its natural
pitch: bit lines connect vertically, word line and supply rails connect
horizontally.
"""

from __future__ import annotations

from repro.cells.base import CellBuilder
from repro.circuit.netlist import Netlist
from repro.layout.cell import Cell
from repro.tech.process import Process

#: Cell dimensions in lambda; exported so array builders can compute
#: pitches without generating a cell first.
WIDTH_LAMBDA = 68
HEIGHT_LAMBDA = 48

#: x centers (lambda) of the vertical structures, mirror-symmetric
#: about x = 34.
_X_BL = 4        # bit line (metal2)
_X_ACC_L = 10    # left access transistor diffusion
_X_Q_L = 18      # left storage-node strap (metal1)
_X_GATE_L = 26   # left inverter gate poly
_X_MID = 34      # shared GND/VDD contact column
_X_GATE_R = 42
_X_Q_R = 50
_X_ACC_R = 58
_X_BLB = 64

#: y bands (lambda).
_Y_NMOS = 10     # NMOS diffusion strip center
_Y_WL = 17       # word-line / access-gate band center
_Y_XA = 20       # cross-couple A (gate L -> node R)
_Y_XB = 27       # cross-couple B (gate R -> node L)
_Y_PMOS = 34     # PMOS diffusion strip center


def sram6t_cell(process: Process) -> Cell:
    """Generate the 6T bit cell for ``process``."""
    b = CellBuilder("sram6t", process)
    w, h = WIDTH_LAMBDA, HEIGHT_LAMBDA

    # Supply rails on the horizontal edges (shared by row mirroring).
    b.rect("metal1", 0, 0, w, 4)          # GND rail
    b.rect("metal1", 0, h - 4, w, h)      # VDD rail

    # Bit lines: metal2, full height.
    b.wire_v("metal2", 0, h, _X_BL)
    b.wire_v("metal2", 0, h, _X_BLB)

    # Word line: metal3, full width.
    b.wire_h("metal3", 0, w, _Y_WL)

    # Inverter pair: horizontal NMOS and PMOS diffusion strips crossed by
    # two vertical poly gates.
    b.rect("ndiff", _X_Q_L - 2, _Y_NMOS - 2, _X_Q_R + 2, _Y_NMOS + 2)
    b.rect("pdiff", _X_Q_L - 2, _Y_PMOS - 2, _X_Q_R + 2, _Y_PMOS + 2)
    b.rect("nwell", _X_Q_L - 7, _Y_PMOS - 7, _X_Q_R + 7, _Y_PMOS + 7)
    for x_gate in (_X_GATE_L, _X_GATE_R):
        b.wire_v("poly", _Y_NMOS - 4, _Y_PMOS + 4, x_gate)

    # Inverter terminals: storage nodes left/right, shared supplies mid.
    for y, rail_y in ((_Y_NMOS, 0), (_Y_PMOS, h)):
        b.contact("ndiff" if y == _Y_NMOS else "pdiff", _X_Q_L, y)
        b.contact("ndiff" if y == _Y_NMOS else "pdiff", _X_MID, y)
        b.contact("ndiff" if y == _Y_NMOS else "pdiff", _X_Q_R, y)
    # Supply straps from the middle contacts to the rails.
    b.wire_v("metal1", 0, _Y_NMOS, _X_MID)
    b.wire_v("metal1", _Y_PMOS, h, _X_MID)
    # Storage-node straps joining NMOS and PMOS drains.
    b.wire_v("metal1", _Y_NMOS, _Y_PMOS, _X_Q_L)
    b.wire_v("metal1", _Y_NMOS, _Y_PMOS, _X_Q_R)

    # Cross-couple A: left gate poly -> right storage node.
    b.contact("poly", _X_GATE_L, _Y_XA)
    b.wire_h("metal1", _X_GATE_L, _X_Q_R, _Y_XA, width_lam=4)
    # Cross-couple B: right gate poly -> left storage node.
    b.contact("poly", _X_GATE_R, _Y_XB)
    b.wire_h("metal1", _X_Q_L, _X_GATE_R, _Y_XB, width_lam=4)

    # Access transistors: vertical diffusion columns at the cell edges,
    # horizontal poly gate stubs strapped up to the metal3 word line.
    for x_acc, x_bl, inner_x in (
        (_X_ACC_L, _X_BL, _X_Q_L),
        (_X_ACC_R, _X_BLB, _X_Q_R),
    ):
        b.rect("ndiff", x_acc - 2, 8, x_acc + 2, 30)
        # Gate stub across the column; contact + via stack to the WL on
        # the bit-line side of the column.
        x_tap = x_acc - 4 if x_bl < x_acc else x_acc + 4
        # The stub must clear the diffusion by the gate endcap on BOTH
        # sides (the tap side reaches further anyway).
        stub_x1 = min(x_tap - 2, x_acc - 4)
        stub_x2 = max(x_tap + 2, x_acc + 4)
        b.rect("poly", stub_x1, _Y_WL - 1, stub_x2, _Y_WL + 1)
        b.contact("poly", x_tap, _Y_WL)
        b.via1(x_tap, _Y_WL)
        b.via2(x_tap, _Y_WL)
        # Bottom terminal: metal1 over to the storage-node strap.
        b.contact("ndiff", x_acc, _Y_NMOS)
        b.wire_h(
            "metal1", min(x_acc, inner_x), max(x_acc, inner_x), _Y_NMOS
        )
        # Top terminal: contact + via1, metal2 over to the bit line.
        b.contact("ndiff", x_acc, _Y_XB)
        b.via1(x_acc, _Y_XB)
        b.wire_h("metal2", min(x_bl, x_acc), max(x_bl, x_acc), _Y_XB)

    # Abutment ports, on both facing edges so tiled neighbours pair up:
    # bit lines vertically (bottom/top), word line and rails
    # horizontally (left/right).
    b.edge_port("bl", "metal2", "bottom", _X_BL - 1.5, _X_BL + 1.5, 0)
    b.edge_port("blb", "metal2", "bottom", _X_BLB - 1.5, _X_BLB + 1.5, 0)
    b.edge_port("bl_t", "metal2", "top", _X_BL - 1.5, _X_BL + 1.5, h)
    b.edge_port("blb_t", "metal2", "top", _X_BLB - 1.5, _X_BLB + 1.5, h)
    b.edge_port("wl", "metal3", "left", _Y_WL - 2.5, _Y_WL + 2.5, 0, "in")
    b.edge_port("wl_r", "metal3", "right", _Y_WL - 2.5, _Y_WL + 2.5, w,
                "in")
    b.edge_port("gnd", "metal1", "left", 0, 4, 0, "supply")
    b.edge_port("vdd", "metal1", "left", h - 4, h, 0, "supply")
    b.edge_port("gnd_r", "metal1", "right", 0, 4, w, "supply")
    b.edge_port("vdd_r", "metal1", "right", h - 4, h, w, "supply")
    return b.finish()


def sram6t_netlist(process: Process, wl_node: str = "wl",
                   bl_node: str = "bl", blb_node: str = "blb") -> Netlist:
    """Transistor netlist of one bit cell (for characterisation).

    Device sizes follow standard cell-ratio practice: pull-down twice the
    access width (read stability), pull-up at minimum (writability).
    """
    f = process.feature_um
    net = Netlist("sram6t")
    w_access = 3 * f
    w_pd = 6 * f
    w_pu = 3 * f
    # Cross-coupled inverters on storage nodes q / qb.
    net.add_inverter("qb", "q", process.nmos, process.pmos, w_pd, w_pu)
    net.add_inverter("q", "qb", process.nmos, process.pmos, w_pd, w_pu)
    # Access devices.
    net.add_mosfet(bl_node, wl_node, "q", process.nmos, w_access)
    net.add_mosfet(blb_node, wl_node, "qb", process.nmos, w_access)
    return net
