"""Shared drawing primitives for leaf-cell generators.

:class:`CellBuilder` wraps a cell under construction with a lambda-grid
coordinate system and correct-by-construction primitives:

* :meth:`rect` — a rectangle given in lambda units,
* :meth:`wire_h` / :meth:`wire_v` — minimum-width (or wider) wires,
* :meth:`contact` / :meth:`via1` / :meth:`via2` — cuts with their
  enclosing landing pads on both connected layers,
* :meth:`mosfet` — a transistor: diffusion strip, poly gate with
  endcaps, optional well,
* :meth:`edge_port` — zero-thickness boundary ports for abutment.

Primitives honour the scalable rule deck, so a generator written once
is legal on every supported process.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.geometry import Rect
from repro.layout.cell import Cell, Port
from repro.tech.process import Process


class CellBuilder:
    """Lambda-grid drawing helper bound to one cell and one process."""

    def __init__(self, name: str, process: Process) -> None:
        self.cell = Cell(name)
        self.process = process
        self.lam = process.rules.lambda_cu

    # -- coordinate helpers -------------------------------------------------

    def l2cu(self, lam_units: float) -> int:
        """Convert lambda units to integer centimicrons.

        Uses half-up rounding (not banker's): half-lambda endpoints are
        common (wire centre +- width/2) and must round consistently so a
        3-lambda-wide wire never loses a centimicron to round-to-even.
        """
        import math

        value = lam_units * self.lam
        return int(math.floor(value + 0.5))

    def rect(self, layer: str, x1: float, y1: float, x2: float, y2: float
             ) -> Rect:
        """Add a rectangle given in lambda units; returns it in cu."""
        r = Rect(self.l2cu(x1), self.l2cu(y1), self.l2cu(x2), self.l2cu(y2))
        self.cell.add_shape(layer, r)
        return r

    # -- wires ---------------------------------------------------------------

    def wire_h(self, layer: str, x1: float, x2: float, y: float,
               width_lam: Optional[float] = None) -> Rect:
        """Horizontal wire centred on ``y`` (lambda units)."""
        w = self._wire_width(layer, width_lam)
        return self.rect(layer, x1, y - w / 2, x2, y + w / 2)

    def wire_v(self, layer: str, y1: float, y2: float, x: float,
               width_lam: Optional[float] = None) -> Rect:
        """Vertical wire centred on ``x`` (lambda units)."""
        w = self._wire_width(layer, width_lam)
        return self.rect(layer, x - w / 2, y1, x + w / 2, y2)

    def _wire_width(self, layer: str, width_lam: Optional[float]) -> float:
        min_lam = self.process.rules.min_width(layer) / self.lam
        if width_lam is None:
            return min_lam
        if width_lam < min_lam:
            raise ValueError(
                f"wire on {layer} width {width_lam} lambda below minimum "
                f"{min_lam}"
            )
        return width_lam

    # -- cuts -----------------------------------------------------------------

    def contact(self, bottom_layer: str, cx: float, cy: float) -> None:
        """A contact cut landing metal1 on poly or diffusion at (cx, cy)."""
        rules = self.process.rules
        cut = rules.min_width("contact") / self.lam
        m1_enc = rules.enclosure("metal1", "contact") / self.lam
        bot_rule = (
            "enclose.poly_contact" if bottom_layer == "poly"
            else "enclose.diff_contact"
        )
        bot_enc = rules[bot_rule] / self.lam
        half = cut / 2
        self.rect("contact", cx - half, cy - half, cx + half, cy + half)
        m1 = half + m1_enc
        self.rect("metal1", cx - m1, cy - m1, cx + m1, cy + m1)
        b = half + bot_enc
        self.rect(bottom_layer, cx - b, cy - b, cx + b, cy + b)

    def via1(self, cx: float, cy: float) -> None:
        """A via connecting metal1 and metal2 at (cx, cy)."""
        self._via("via1", "metal1", "metal2", cx, cy)

    def via2(self, cx: float, cy: float) -> None:
        """A via connecting metal2 and metal3 at (cx, cy)."""
        self._via("via2", "metal2", "metal3", cx, cy)

    def _via(self, cut_layer: str, lower: str, upper: str,
             cx: float, cy: float) -> None:
        rules = self.process.rules
        cut = rules.min_width(cut_layer) / self.lam
        lo_enc = rules.enclosure(lower, cut_layer) / self.lam
        hi_enc = rules.enclosure(upper, cut_layer) / self.lam
        half = cut / 2
        self.rect(cut_layer, cx - half, cy - half, cx + half, cy + half)
        lo = half + lo_enc
        self.rect(lower, cx - lo, cy - lo, cx + lo, cy + lo)
        # Upper pad must also satisfy the upper layer's min width.
        hi = max(half + hi_enc, rules.min_width(upper) / self.lam / 2)
        self.rect(upper, cx - hi, cy - hi, cx + hi, cy + hi)

    # -- devices -----------------------------------------------------------------

    def mosfet(
        self,
        polarity: str,
        x: float,
        y: float,
        w_lam: float,
        l_lam: Optional[float] = None,
        vertical_gate: bool = True,
    ) -> Tuple[Rect, Rect]:
        """Draw a transistor with its gate centred at ``(x, y)``.

        With a vertical gate, current flows horizontally: the diffusion
        strip is ``2*overhang + L`` wide and ``W`` tall.  Returns the
        (diffusion, poly) rectangles in centimicrons so callers can hook
        wires to the terminals.

        PMOS devices also get an enclosing n-well.
        """
        if polarity not in ("nmos", "pmos"):
            raise ValueError(f"bad polarity {polarity!r}")
        rules = self.process.rules
        l_lam = l_lam if l_lam is not None else rules.min_width("poly") / self.lam
        diff_layer = "ndiff" if polarity == "nmos" else "pdiff"
        over_d = rules["overhang.diff_gate"] / self.lam
        over_p = rules["overhang.gate_poly"] / self.lam
        if vertical_gate:
            diff = self.rect(
                diff_layer,
                x - l_lam / 2 - over_d, y - w_lam / 2,
                x + l_lam / 2 + over_d, y + w_lam / 2,
            )
            poly = self.rect(
                "poly",
                x - l_lam / 2, y - w_lam / 2 - over_p,
                x + l_lam / 2, y + w_lam / 2 + over_p,
            )
        else:
            diff = self.rect(
                diff_layer,
                x - w_lam / 2, y - l_lam / 2 - over_d,
                x + w_lam / 2, y + l_lam / 2 + over_d,
            )
            poly = self.rect(
                "poly",
                x - w_lam / 2 - over_p, y - l_lam / 2,
                x + w_lam / 2 + over_p, y + l_lam / 2,
            )
        if polarity == "pmos":
            enc = rules.enclosure("well", "diff") / self.lam
            self.cell.add_shape(
                "nwell",
                Rect(
                    diff.x1 - self.l2cu(enc),
                    diff.y1 - self.l2cu(enc),
                    diff.x2 + self.l2cu(enc),
                    diff.y2 + self.l2cu(enc),
                ),
            )
        return diff, poly

    # -- ports ------------------------------------------------------------------

    def edge_port(
        self,
        name: str,
        layer: str,
        edge: str,
        along_from: float,
        along_to: float,
        extent: float,
        direction: str = "inout",
    ) -> Port:
        """A zero-thickness port segment on a cell boundary.

        ``edge`` is one of "left", "right", "bottom", "top"; ``extent``
        is the boundary coordinate (x for left/right, y for bottom/top);
        ``along_from``/``along_to`` span the segment along the edge.
        All in lambda units.
        """
        a1, a2 = self.l2cu(along_from), self.l2cu(along_to)
        e = self.l2cu(extent)
        if edge in ("left", "right"):
            rect = Rect(e, min(a1, a2), e, max(a1, a2))
        elif edge in ("bottom", "top"):
            rect = Rect(min(a1, a2), e, max(a1, a2), e)
        else:
            raise ValueError(f"bad edge {edge!r}")
        port = Port(name=name, layer=layer, rect=rect, direction=direction)
        self.cell.add_port(port)
        return port

    def point_port(self, name: str, layer: str, x: float, y: float,
                   direction: str = "inout") -> Port:
        """A point port at interior coordinates (lambda units)."""
        p = self.l2cu(x), self.l2cu(y)
        port = Port(
            name=name, layer=layer,
            rect=Rect(p[0], p[1], p[0], p[1]),
            direction=direction,
        )
        self.cell.add_port(port)
        return port

    def finish(self) -> Cell:
        """Return the built cell."""
        return self.cell
