"""The dual-port (8T) SRAM bit cell.

The macro shape ``ports=2`` selects: the 6T storage core of
:mod:`repro.cells.sram6t` plus a second NMOS access pair on its own
word line (metal3, upper band) and its own bit-line pair (metal2, over
the storage-node columns).  Register-file style dual-port cells like
this let the BIST engine stream a march from one port while the other
observes — and are the paper's natural extension target since the BISR
multiplexers replicate per port.

The cell keeps the 68-lambda column pitch of the 6T cell so dual-port
arrays reuse every column-periphery generator unchanged; the extra
word line, access devices, and bit-line terminals raise the height to
68 lambda.  Edge ports mirror the 6T contract (bit lines vertical,
word lines and rails horizontal) with a second ``bl2``/``blb2``/``wl2``
set, so tiling with ``alternate_mirror_y`` shares rails exactly as the
single-port array does.
"""

from __future__ import annotations

from repro.cells.base import CellBuilder
from repro.circuit.netlist import Netlist
from repro.layout.cell import Cell
from repro.tech.process import Process

#: Cell dimensions in lambda.  Same column pitch as the 6T cell; the
#: second port adds 20 lambda of height.
WIDTH_LAMBDA = 68
HEIGHT_LAMBDA = 68

#: x centers (lambda), shared with the 6T core.
_X_BL = 4        # port-A bit line (metal2)
_X_ACC_L = 10    # port-A left access transistor diffusion
_X_Q_L = 18      # left storage column: metal1 strap + port-B bit line
_X_GATE_L = 26   # left inverter gate poly / left WL2 tap
_X_MID = 34      # shared GND/VDD contact column
_X_GATE_R = 42
_X_Q_R = 50
_X_ACC_R = 58
_X_BLB = 64

#: y bands (lambda).  The 6T core occupies y 0..38 unchanged; the
#: port-B structures live in the 38..64 band under the raised VDD rail.
_Y_NMOS = 10
_Y_WL = 17       # port-A word line
_Y_XA = 20
_Y_XB = 27
_Y_PMOS = 34
_Y_QB = 43       # port-B storage-side terminals
_Y_WL2 = 50      # port-B word line
_Y_BLB2 = 58     # port-B bit-line-side terminals


def sram_dp_cell(process: Process) -> Cell:
    """Generate the dual-port (8T) bit cell for ``process``."""
    b = CellBuilder("sram_dp", process)
    w, h = WIDTH_LAMBDA, HEIGHT_LAMBDA

    # Supply rails on the horizontal edges (shared by row mirroring).
    b.rect("metal1", 0, 0, w, 4)          # GND rail
    b.rect("metal1", 0, h - 4, w, h)      # VDD rail

    # Port-A bit lines at the cell edges; port-B bit lines over the
    # storage columns.  All metal2, full height.
    b.wire_v("metal2", 0, h, _X_BL)
    b.wire_v("metal2", 0, h, _X_BLB)
    b.wire_v("metal2", 0, h, _X_Q_L)
    b.wire_v("metal2", 0, h, _X_Q_R)

    # Word lines: metal3, full width, one band per port.
    b.wire_h("metal3", 0, w, _Y_WL)
    b.wire_h("metal3", 0, w, _Y_WL2)

    # --- 6T storage core (identical to sram6t up to the rail move) ---
    b.rect("ndiff", _X_Q_L - 2, _Y_NMOS - 2, _X_Q_R + 2, _Y_NMOS + 2)
    b.rect("pdiff", _X_Q_L - 2, _Y_PMOS - 2, _X_Q_R + 2, _Y_PMOS + 2)
    b.rect("nwell", _X_Q_L - 7, _Y_PMOS - 7, _X_Q_R + 7, _Y_PMOS + 7)
    for x_gate in (_X_GATE_L, _X_GATE_R):
        b.wire_v("poly", _Y_NMOS - 4, _Y_PMOS + 4, x_gate)

    for y in (_Y_NMOS, _Y_PMOS):
        layer = "ndiff" if y == _Y_NMOS else "pdiff"
        b.contact(layer, _X_Q_L, y)
        b.contact(layer, _X_MID, y)
        b.contact(layer, _X_Q_R, y)
    # Supply straps: GND down to the bottom rail, VDD up to the raised
    # top rail.
    b.wire_v("metal1", 0, _Y_NMOS, _X_MID)
    b.wire_v("metal1", _Y_PMOS, h, _X_MID)
    # Storage-node straps, extended upward to meet the port-B
    # storage-side contacts at y 43.
    b.wire_v("metal1", _Y_NMOS, _Y_QB + 1, _X_Q_L)
    b.wire_v("metal1", _Y_NMOS, _Y_QB + 1, _X_Q_R)

    # Cross-couples.
    b.contact("poly", _X_GATE_L, _Y_XA)
    b.wire_h("metal1", _X_GATE_L, _X_Q_R, _Y_XA, width_lam=4)
    b.contact("poly", _X_GATE_R, _Y_XB)
    b.wire_h("metal1", _X_Q_L, _X_GATE_R, _Y_XB, width_lam=4)

    # Port-A access transistors (the 6T block unchanged).
    for x_acc, x_bl, inner_x in (
        (_X_ACC_L, _X_BL, _X_Q_L),
        (_X_ACC_R, _X_BLB, _X_Q_R),
    ):
        b.rect("ndiff", x_acc - 2, 8, x_acc + 2, 30)
        x_tap = x_acc - 4 if x_bl < x_acc else x_acc + 4
        stub_x1 = min(x_tap - 2, x_acc - 4)
        stub_x2 = max(x_tap + 2, x_acc + 4)
        b.rect("poly", stub_x1, _Y_WL - 1, stub_x2, _Y_WL + 1)
        b.contact("poly", x_tap, _Y_WL)
        b.via1(x_tap, _Y_WL)
        b.via2(x_tap, _Y_WL)
        b.contact("ndiff", x_acc, _Y_NMOS)
        b.wire_h(
            "metal1", min(x_acc, inner_x), max(x_acc, inner_x), _Y_NMOS
        )
        b.contact("ndiff", x_acc, _Y_XB)
        b.via1(x_acc, _Y_XB)
        b.wire_h("metal2", min(x_bl, x_acc), max(x_bl, x_acc), _Y_XB)

    # --- Port-B access transistors: vertical diffusion columns directly
    # under the bl2/blb2 metal2, gated by horizontal poly stubs strapped
    # up to the metal3 WL2 with inboard via stacks.
    for x_q, x_tap in ((_X_Q_L, _X_GATE_L), (_X_Q_R, _X_GATE_R)):
        b.rect("ndiff", x_q - 2, _Y_QB - 1, x_q + 2, _Y_BLB2 + 4)
        stub_x1 = min(x_q - 4, x_tap - 2)
        stub_x2 = max(x_q + 4, x_tap + 2)
        b.rect("poly", stub_x1, _Y_WL2 - 1, stub_x2, _Y_WL2 + 1)
        b.contact("poly", x_tap, _Y_WL2)
        b.via1(x_tap, _Y_WL2)
        b.via2(x_tap, _Y_WL2)
        # Storage-side terminal: the metal1 pad merges the storage strap.
        b.contact("ndiff", x_q, _Y_QB)
        # Bit-line-side terminal: contact + via1 straight up into the
        # bl2/blb2 metal2 running overhead.
        b.contact("ndiff", x_q, _Y_BLB2)
        b.via1(x_q, _Y_BLB2)

    # Abutment ports: both port's bit lines vertical, both word lines
    # and the rails horizontal.
    b.edge_port("bl", "metal2", "bottom", _X_BL - 1.5, _X_BL + 1.5, 0)
    b.edge_port("blb", "metal2", "bottom", _X_BLB - 1.5, _X_BLB + 1.5, 0)
    b.edge_port("bl2", "metal2", "bottom", _X_Q_L - 1.5, _X_Q_L + 1.5, 0)
    b.edge_port("blb2", "metal2", "bottom", _X_Q_R - 1.5, _X_Q_R + 1.5, 0)
    b.edge_port("bl_t", "metal2", "top", _X_BL - 1.5, _X_BL + 1.5, h)
    b.edge_port("blb_t", "metal2", "top", _X_BLB - 1.5, _X_BLB + 1.5, h)
    b.edge_port("bl2_t", "metal2", "top", _X_Q_L - 1.5, _X_Q_L + 1.5, h)
    b.edge_port("blb2_t", "metal2", "top", _X_Q_R - 1.5, _X_Q_R + 1.5, h)
    b.edge_port("wl", "metal3", "left", _Y_WL - 2.5, _Y_WL + 2.5, 0, "in")
    b.edge_port("wl_r", "metal3", "right", _Y_WL - 2.5, _Y_WL + 2.5, w,
                "in")
    b.edge_port("wl2", "metal3", "left", _Y_WL2 - 2.5, _Y_WL2 + 2.5, 0,
                "in")
    b.edge_port("wl2_r", "metal3", "right", _Y_WL2 - 2.5, _Y_WL2 + 2.5, w,
                "in")
    b.edge_port("gnd", "metal1", "left", 0, 4, 0, "supply")
    b.edge_port("vdd", "metal1", "left", h - 4, h, 0, "supply")
    b.edge_port("gnd_r", "metal1", "right", 0, 4, w, "supply")
    b.edge_port("vdd_r", "metal1", "right", h - 4, h, w, "supply")
    return b.finish()


def sram_dp_netlist(process: Process) -> Netlist:
    """Transistor netlist of one dual-port cell (8T)."""
    f = process.feature_um
    net = Netlist("sram_dp")
    w_access = 3 * f
    w_pd = 6 * f
    w_pu = 3 * f
    net.add_inverter("qb", "q", process.nmos, process.pmos, w_pd, w_pu)
    net.add_inverter("q", "qb", process.nmos, process.pmos, w_pd, w_pu)
    net.add_mosfet("bl", "wl", "q", process.nmos, w_access)
    net.add_mosfet("blb", "wl", "qb", process.nmos, w_access)
    net.add_mosfet("bl2", "wl2", "q", process.nmos, w_access)
    net.add_mosfet("blb2", "wl2", "qb", process.nmos, w_access)
    return net
