"""A verified standard-cell drawing pattern for control-logic leaf cells.

The BIST/BISR periphery (flip-flops, counter bits, comparator slices,
tristate buffers) does not need bit-cell-level layout craft; what matters
is that every generated cell is DRC-clean on any rule deck and has an
area that scales like real standard cells.  ``draw_logic_block`` draws
the one pattern that guarantees this:

* GND and VDD rails on the bottom/top cell edges,
* one horizontal NMOS and one horizontal PMOS diffusion strip,
* ``n_gates`` vertical poly gates at a safe pitch crossing both strips,
* gate-input contacts in a middle band, source/drain contacts on the
  strips,
* an n-well around the PMOS strip.

All spacings are derived from the rule deck with margin, so the pattern
passes DRC at every supported lambda.  Transistor-level function is
carried by the companion netlists and behavioural models, as in any
abstracted standard-cell flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.cells.base import CellBuilder

#: Standard-cell row height in lambda — matches the SRAM row pitch so
#: row-pitched periphery (decoders, drivers, TLB rows) abuts the array.
ROW_HEIGHT_LAMBDA = 48

#: Horizontal pitch between poly gates, lambda.
GATE_PITCH_LAMBDA = 8

#: x coordinate of the first gate, lambda.
FIRST_GATE_LAMBDA = 12


@dataclass(frozen=True)
class LogicBlock:
    """Landmark coordinates (lambda) of a drawn logic block."""

    width: int
    height: int
    gate_xs: List[float]
    y_nmos: float
    y_pmos: float
    y_input_band: float


def logic_block_width(n_gates: int) -> int:
    """Cell width in lambda for ``n_gates`` transistor columns."""
    if n_gates < 1:
        raise ValueError("a logic block needs at least one gate")
    return FIRST_GATE_LAMBDA * 2 + GATE_PITCH_LAMBDA * (n_gates - 1)


def draw_logic_block(
    b: CellBuilder,
    n_gates: int,
    height: int = ROW_HEIGHT_LAMBDA,
    contact_all_terminals: bool = True,
) -> LogicBlock:
    """Draw the standard pattern into ``b`` and return its landmarks."""
    w = logic_block_width(n_gates)
    h = height
    y_nmos = 13.0
    y_pmos = h - 13.0
    y_mid = (y_nmos + y_pmos) / 2.0

    # Supply rails on the horizontal edges.
    b.rect("metal1", 0, 0, w, 4)
    b.rect("metal1", 0, h - 4, w, h)

    gate_xs = [
        float(FIRST_GATE_LAMBDA + i * GATE_PITCH_LAMBDA) for i in range(n_gates)
    ]
    x1 = gate_xs[0] - 6
    x2 = gate_xs[-1] + 6

    # Diffusion strips and well.  The well runs the full cell width so
    # that abutted blocks in a row share one continuous well — an inset
    # well leaves a sub-minimum gap between neighbours (caught by the
    # hierarchical signoff sweep).
    b.rect("ndiff", x1, y_nmos - 3, x2, y_nmos + 3)
    b.rect("pdiff", x1, y_pmos - 3, x2, y_pmos + 3)
    b.rect("nwell", 0, y_pmos - 8, w, y_pmos + 8)

    # Poly gates crossing both strips, with an input contact mid-cell.
    for x in gate_xs:
        b.wire_v("poly", y_nmos - 5, y_pmos + 5, x)
        b.contact("poly", x, y_mid)

    # Source/drain contacts between gates (and at the strip ends).
    if contact_all_terminals:
        terminal_xs = [gate_xs[0] - 4]
        terminal_xs += [x + GATE_PITCH_LAMBDA / 2 for x in gate_xs[:-1]]
        terminal_xs.append(gate_xs[-1] + 4)
        for x in terminal_xs:
            b.contact("ndiff", x, y_nmos)
            b.contact("pdiff", x, y_pmos)

    # Tie the first and last PMOS terminals to VDD and the first and
    # last NMOS terminals to GND — every real gate topology grounds its
    # stack ends, and this also exercises rail strapping.
    for x in (gate_xs[0] - 4, gate_xs[-1] + 4):
        b.wire_v("metal1", 0, y_nmos, x)
        b.wire_v("metal1", y_pmos, h, x)

    return LogicBlock(
        width=w,
        height=h,
        gate_xs=gate_xs,
        y_nmos=y_nmos,
        y_pmos=y_pmos,
        y_input_band=y_mid,
    )
