"""Port-B bit-line precharge row for dual-port arrays.

The second port's bit lines need their own precharge/equalisation, but
the port-A precharge row sits on top of the array where ``bl2``/``blb2``
do not reach the periphery.  This cell is therefore drawn *under* the
array (between the column mux and the array bottom): the port-A bit
lines pass straight through on metal2, while pull-ups and an equaliser
hang on the ``bl2``/``blb2`` columns.  Its VDD rail is on the *bottom*
edge so the top edge abuts array row 0 (whose bottom edge is the GND
rail) without metal1 adjacency.
"""

from __future__ import annotations

from repro.cells.base import CellBuilder
from repro.cells.sram6t import WIDTH_LAMBDA as COLUMN_PITCH
from repro.circuit.netlist import Netlist
from repro.layout.cell import Cell
from repro.tech.process import Process

HEIGHT_LAMBDA = 44

#: x centers shared with the dual-port bit cell.
_X_BL = 4
_X_BL2 = 18
_X_BLB2 = 50
_X_BLB = 64


def precharge_dp_cell(process: Process, gate_size: int = 1) -> Cell:
    """Generate the port-B precharge cell (pass-through for port A)."""
    if gate_size < 1:
        raise ValueError("gate_size must be >= 1")
    b = CellBuilder("precharge_dp", process)
    w, h = COLUMN_PITCH, HEIGHT_LAMBDA
    dev_w = 6 + 2 * (gate_size - 1)

    b.rect("metal1", 0, 0, w, 4)      # VDD rail on the BOTTOM edge
    # Port-A bit lines pass through untouched.
    b.wire_v("metal2", 0, h, _X_BL)
    b.wire_v("metal2", 0, h, _X_BLB)
    # Port-B bit lines end here (the mux row below has no bl2).
    b.wire_v("metal2", 0, h, _X_BL2)
    b.wire_v("metal2", 0, h, _X_BLB2)

    # Pull-up pair on bl2/blb2: one pdiff strip, two gates, VDD mid.
    y_pu = 30
    b.rect("pdiff", 22, y_pu - dev_w / 2, 46, y_pu + dev_w / 2)
    for x_gate in (28, 40):
        b.wire_v("poly", 19, y_pu + dev_w / 2 + 2, x_gate)
    b.contact("pdiff", 24, y_pu)
    b.contact("pdiff", 34, y_pu)
    b.contact("pdiff", 44, y_pu)
    b.wire_v("metal1", 0, y_pu, 34)   # VDD strap down to the rail
    b.via1(24, y_pu)
    b.wire_h("metal2", _X_BL2, 24, y_pu)    # to bl2
    b.via1(44, y_pu)
    b.wire_h("metal2", 44, _X_BLB2, y_pu)   # to blb2

    # Equalising device between bl2 and blb2.  Its source/drain
    # contacts sit outboard (x 27/41) so their metal1 pads clear the
    # VDD strap running down the cell middle.
    y_eq = 12
    b.rect("pdiff", 25, y_eq - 3, 43, y_eq + 3)
    b.wire_v("poly", y_eq - 5, y_eq + 9, 34)
    b.contact("pdiff", 27, y_eq)
    b.contact("pdiff", 41, y_eq)
    b.via1(27, y_eq)
    b.wire_h("metal2", _X_BL2, 27, y_eq)
    b.via1(41, y_eq)
    b.wire_h("metal2", 41, _X_BLB2, y_eq)

    # Common gate wiring: join the three gates in poly, contact to
    # metal1, run the active-low precharge signal to the left edge.
    b.wire_h("poly", 22, 41, 20)
    b.contact("poly", 24, 20)
    b.wire_h("metal1", 0, 24, 20)
    b.rect("nwell", 17, 4, 51, y_pu + dev_w / 2 + 5)

    b.edge_port("bl", "metal2", "bottom", _X_BL - 1.5, _X_BL + 1.5, 0)
    b.edge_port("blb", "metal2", "bottom", _X_BLB - 1.5, _X_BLB + 1.5, 0)
    b.edge_port("bl_t", "metal2", "top", _X_BL - 1.5, _X_BL + 1.5, h)
    b.edge_port("blb_t", "metal2", "top", _X_BLB - 1.5, _X_BLB + 1.5, h)
    b.edge_port("bl2_t", "metal2", "top", _X_BL2 - 1.5, _X_BL2 + 1.5, h)
    b.edge_port("blb2_t", "metal2", "top", _X_BLB2 - 1.5, _X_BLB2 + 1.5,
                h)
    b.edge_port("pcb2", "metal1", "left", 18.5, 21.5, 0, "in")
    b.edge_port("vdd", "metal1", "left", 0, 4, 0, "supply")
    return b.finish()


def precharge_dp_netlist(process: Process, gate_size: int = 1) -> Netlist:
    """Netlist view: three PMOS devices on bl2/blb2 gated by ``pcb2``."""
    f = process.feature_um
    w_dev = (3 + gate_size) * f
    net = Netlist("precharge_dp")
    net.add_mosfet("bl2", "pcb2", "vdd", process.pmos, w_dev)
    net.add_mosfet("blb2", "pcb2", "vdd", process.pmos, w_dev)
    net.add_mosfet("bl2", "pcb2", "blb2", process.pmos, w_dev)
    return net
