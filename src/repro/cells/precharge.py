"""Bit-line precharge / equalisation cell.

"Often RAM bit-lines are precharged in anticipation of read in order to
reduce the access time" (paper section VI).  The cell holds the classic
three-PMOS precharge: two pull-ups from VDD to BL/BLB and one equalising
pass device between them, all gated by the active-low precharge signal.
Width matches the bit-cell pitch so a row of these abuts the array.
"""

from __future__ import annotations

from repro.cells.base import CellBuilder
from repro.cells.sram6t import WIDTH_LAMBDA as COLUMN_PITCH
from repro.circuit.netlist import Netlist
from repro.layout.cell import Cell
from repro.tech.process import Process

HEIGHT_LAMBDA = 44


def precharge_cell(process: Process, gate_size: int = 1) -> Cell:
    """Generate the precharge cell.

    ``gate_size`` scales the precharge device widths — the paper's
    "critical components ... such as the precharge transistors ... are
    made larger than minimal size to increase their current drive
    strengths".
    """
    if gate_size < 1:
        raise ValueError("gate_size must be >= 1")
    b = CellBuilder("precharge", process)
    w, h = COLUMN_PITCH, HEIGHT_LAMBDA
    dev_w = 6 + 2 * (gate_size - 1)

    b.rect("metal1", 0, h - 4, w, h)  # VDD rail on top edge
    b.wire_v("metal2", 0, h, 4)       # BL
    b.wire_v("metal2", 0, h, 64)      # BLB

    # Pull-up pair: one pdiff strip, two gates, VDD contact mid.
    y_pu = 27
    b.rect("pdiff", 14, y_pu - dev_w / 2, 54, y_pu + dev_w / 2)
    for x_gate in (25, 43):
        b.wire_v("poly", 18, y_pu + dev_w / 2 + 2, x_gate)
    b.contact("pdiff", 18, y_pu)
    b.contact("pdiff", 34, y_pu)
    b.contact("pdiff", 50, y_pu)
    b.wire_v("metal1", y_pu, h, 34)   # VDD strap
    b.via1(18, y_pu)
    b.wire_h("metal2", 4, 18, y_pu)   # to BL
    b.via1(50, y_pu)
    b.wire_h("metal2", 50, 64, y_pu)  # to BLB

    # Equalising device between the bit lines.
    y_eq = 11
    b.rect("pdiff", 24, y_eq - 3, 44, y_eq + 3)
    b.wire_v("poly", y_eq - 5, y_eq + 5, 34)
    b.contact("pdiff", 28, y_eq)
    b.contact("pdiff", 40, y_eq)
    b.via1(28, y_eq)
    b.wire_h("metal2", 4, 28, y_eq)
    b.via1(40, y_eq)
    b.wire_h("metal2", 40, 64, y_eq)

    # Common gate wiring: join the three gates in poly, contact to
    # metal1, run the active-low precharge signal to the left edge.
    b.wire_h("poly", 18, 46, 19)
    b.wire_v("poly", y_eq + 5, 19, 34)
    b.contact("poly", 20, 19)
    b.wire_h("metal1", 0, 20, 19)
    b.rect(
        "nwell", 9, 3, 59, y_pu + dev_w / 2 + 5
    )

    b.edge_port("bl", "metal2", "bottom", 2.5, 5.5, 0)
    b.edge_port("blb", "metal2", "bottom", 62.5, 65.5, 0)
    b.edge_port("pcb", "metal1", "left", 17.5, 20.5, 0, "in")
    b.edge_port("vdd", "metal1", "left", h - 4, h, 0, "supply")
    return b.finish()


def precharge_netlist(process: Process, gate_size: int = 1) -> Netlist:
    """Netlist view: three PMOS devices gated by ``pcb``."""
    f = process.feature_um
    w_dev = (3 + gate_size) * f
    net = Netlist("precharge")
    net.add_mosfet("bl", "pcb", "vdd", process.pmos, w_dev)
    net.add_mosfet("blb", "pcb", "vdd", process.pmos, w_dev)
    net.add_mosfet("bl", "pcb", "blb", process.pmos, w_dev)
    return net
