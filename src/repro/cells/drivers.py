"""Driver cells: word-line driver, write driver, tristate buffer.

"Critical components in the RAM circuitry, such as the precharge
transistors and the word line drivers, are made larger than minimal size
to increase their current drive strengths."  The ``gate_size`` parameter
of each generator is that knob.
"""

from __future__ import annotations

from repro.cells.base import CellBuilder
from repro.cells.sram6t import HEIGHT_LAMBDA as ROW_PITCH
from repro.cells.stdcell import draw_logic_block
from repro.circuit.netlist import Netlist
from repro.layout.cell import Cell
from repro.tech.process import Process

WL_DRIVER_WIDTH_LAMBDA = 68


def wordline_driver_cell(process: Process, gate_size: int = 1) -> Cell:
    """Two-stage word-line driver at the SRAM row pitch.

    Input arrives from the row decoder in metal2 on the left edge; the
    output drives the array's metal3 word line on the right edge, so a
    column of drivers abuts the array's left side.
    """
    if gate_size < 1:
        raise ValueError("gate_size must be >= 1")
    b = CellBuilder("wl_driver", process)
    w, h = WL_DRIVER_WIDTH_LAMBDA, ROW_PITCH
    dev_w = 6 + 2 * (gate_size - 1)

    b.rect("metal1", 0, 0, w, 4)
    b.rect("metal1", 0, h - 4, w, h)

    # NMOS strip: out1 | gnd(shared) | out2 with gates at x=23 and x=41.
    y_n = 13
    b.rect("ndiff", 8, y_n - dev_w / 2, 56, y_n + dev_w / 2)
    y_p = 39
    b.rect("pdiff", 8, y_p - dev_w / 2, 56, y_p + dev_w / 2)
    # Well reaches the left cell edge so it merges with the abutting
    # row decoder's well instead of leaving a sub-minimum gap.
    b.rect("nwell", 0, y_p - dev_w / 2 - 5, 61, y_p + dev_w / 2 + 5)
    for x_gate in (23, 41):
        b.wire_v("poly", y_n - dev_w / 2 - 2, y_p + dev_w / 2 + 2, x_gate)
    for y in (y_n, y_p):
        b.contact("ndiff" if y == y_n else "pdiff", 13, y)
        b.contact("ndiff" if y == y_n else "pdiff", 32, y)
        b.contact("ndiff" if y == y_n else "pdiff", 51, y)
    b.wire_v("metal1", 0, y_n, 32)      # GND strap
    b.wire_v("metal1", y_p, h, 32)      # VDD strap

    # Stage-1 output strap and its hop to the stage-2 gate.
    b.wire_v("metal1", y_n, y_p, 13)
    b.contact("poly", 41, 20)
    b.wire_h("metal1", 13, 41, 20)

    # Stage-2 output strap, then up to metal3 for the word line.
    b.wire_v("metal1", y_n, y_p, 51)
    b.via1(51, 28)
    b.via2(51, 28)
    b.wire_h("metal3", 51, w, 28)

    # Input: metal2 from the left edge onto the stage-1 gate.
    b.contact("poly", 23, 28)
    b.via1(23, 28)
    b.wire_h("metal2", 0, 23, 28)

    b.edge_port("in", "metal2", "left", 26.5, 29.5, 0, "in")
    b.edge_port("wl", "metal3", "right", 25.5, 30.5, w, "out")
    b.edge_port("gnd", "metal1", "left", 0, 4, 0, "supply")
    b.edge_port("vdd", "metal1", "left", h - 4, h, 0, "supply")
    return b.finish()


def wordline_driver_netlist(process: Process, gate_size: int = 1,
                            wl_cap_f: float = 500e-15) -> Netlist:
    """The word-line drive chain: three inverters, progressive sizing.

    The chain inverts overall — the decoder's NAND output is active
    low, the word line active high.  Stage one is the small buffer at
    the decoder output (drawn in the decoder cell); the two drawn
    driver stages follow at 3x and 9x.
    """
    from repro.circuit.netlist import GND

    f = process.feature_um
    wn1 = 3 * f * gate_size
    wp1 = 7.5 * f * gate_size
    net = Netlist("wl_driver")
    net.add_inverter("in", "s1", process.nmos, process.pmos, wn1, wp1)
    net.add_inverter("s1", "s2", process.nmos, process.pmos,
                     3 * wn1, 3 * wp1)
    net.add_inverter("s2", "wl", process.nmos, process.pmos,
                     9 * wn1, 9 * wp1)
    net.add_capacitor("wl", GND, wl_cap_f)
    return net


def write_driver_cell(process: Process, gate_size: int = 1) -> Cell:
    """Write driver at the column pitch: drives DL/DLB from data in.

    Drawn with the verified logic-block pattern (6 transistor columns:
    data inverter, two enable-gated drivers).
    """
    if gate_size < 1:
        raise ValueError("gate_size must be >= 1")
    b = CellBuilder("write_driver", process)
    block = draw_logic_block(b, n_gates=6, height=52)
    w = block.width
    # Data lines up to the mux in metal2.
    b.via1(block.gate_xs[0] - 4, block.y_nmos)
    b.wire_v("metal2", block.y_nmos, 52, block.gate_xs[0] - 4)
    b.via1(block.gate_xs[-1] + 4, block.y_nmos)
    b.wire_v("metal2", block.y_nmos, 52, block.gate_xs[-1] + 4)
    b.edge_port(
        "dl", "metal2", "top",
        block.gate_xs[0] - 5.5, block.gate_xs[0] - 2.5, 52,
    )
    b.edge_port(
        "dlb", "metal2", "top",
        block.gate_xs[-1] + 2.5, block.gate_xs[-1] + 5.5, 52,
    )
    b.point_port("d", "metal1", block.gate_xs[0], block.y_input_band, "in")
    b.point_port("we", "metal1", block.gate_xs[2], block.y_input_band, "in")
    b.edge_port("gnd", "metal1", "left", 0, 4, 0, "supply")
    b.edge_port("vdd", "metal1", "left", 48, 52, 0, "supply")
    return b.finish()


def tristate_buffer_cell(process: Process, gate_size: int = 1) -> Cell:
    """Tristate buffer used at TLB and address-register outputs.

    "This selection can be achieved using suitably sized tristate
    buffers at the outputs of the TLB and the address register" — the
    mechanism that masks the TLB delay in synchronous RAMs.
    """
    if gate_size < 1:
        raise ValueError("gate_size must be >= 1")
    b = CellBuilder("tristate", process)
    block = draw_logic_block(b, n_gates=4)
    b.point_port("d", "metal1", block.gate_xs[0], block.y_input_band, "in")
    b.point_port("en", "metal1", block.gate_xs[1], block.y_input_band, "in")
    b.point_port(
        "q", "metal1", block.gate_xs[-1] + 4, block.y_nmos, "out"
    )
    b.edge_port("gnd", "metal1", "left", 0, 4, 0, "supply")
    b.edge_port(
        "vdd", "metal1", "left", block.height - 4, block.height, 0, "supply"
    )
    return b.finish()
