"""Leaf-cell generators.

Every generator takes a :class:`~repro.tech.process.Process` and returns
a DRC-clean :class:`~repro.layout.cell.Cell` whose dimensions are pure
functions of the design rules — the mechanism behind BISRAMGEN's
design-rule independence.  Generators for circuit-critical cells also
provide a companion ``*_netlist`` builder so the SPICE engine can
characterise them ("generate simple leaf cells ahead of time and extract
and simulate them").

Leaf cells are designed for abutment: bit lines span the full cell
height at fixed x offsets and word lines span the full width at fixed y
offsets, so tiling cells at their natural pitch connects every signal
without routing.
"""

from repro.cells.base import CellBuilder
from repro.cells.stdcell import draw_logic_block, logic_block_width
from repro.cells.sram6t import sram6t_cell, sram6t_netlist
from repro.cells.sram_dp import sram_dp_cell, sram_dp_netlist
from repro.cells.precharge import precharge_cell, precharge_netlist
from repro.cells.precharge_dp import precharge_dp_cell, precharge_dp_netlist
from repro.cells.senseamp import senseamp_cell, senseamp_netlist
from repro.cells.drivers import (
    wordline_driver_cell,
    wordline_driver_netlist,
    write_driver_cell,
    tristate_buffer_cell,
)
from repro.cells.decoders import row_decoder_cell, column_decoder_cell
from repro.cells.column_mux import column_mux_cell
from repro.cells.sequential import (
    dff_cell,
    counter_bit_cell,
    johnson_bit_cell,
    comparator_slice_cell,
)
from repro.cells.cam import cam_cell, cam_match_netlist
from repro.cells.pla import pla_cell
from repro.cells.strap import strap_cell

__all__ = [
    "CellBuilder",
    "draw_logic_block",
    "logic_block_width",
    "sram6t_cell",
    "sram6t_netlist",
    "sram_dp_cell",
    "sram_dp_netlist",
    "precharge_cell",
    "precharge_netlist",
    "precharge_dp_cell",
    "precharge_dp_netlist",
    "senseamp_cell",
    "senseamp_netlist",
    "wordline_driver_cell",
    "wordline_driver_netlist",
    "write_driver_cell",
    "tristate_buffer_cell",
    "row_decoder_cell",
    "column_decoder_cell",
    "column_mux_cell",
    "dff_cell",
    "counter_bit_cell",
    "johnson_bit_cell",
    "comparator_slice_cell",
    "cam_cell",
    "cam_match_netlist",
    "pla_cell",
    "strap_cell",
]
