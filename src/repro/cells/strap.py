"""Strap cell: the inter-subarray spacing column.

"The strap space parameter provides design flexibility in increasing
the spacing between subarrays at regular intervals.  This may be
required for various reasons; for example, to allow over-the-cell
wiring across the RAM array to save silicon area."

The cell carries the word line straight through in metal3, continues
the supply rails, and ties the well — leaving the metal-2 tracks free
for the user's over-the-cell wiring.
"""

from __future__ import annotations

from repro.cells.base import CellBuilder
from repro.cells.sram6t import HEIGHT_LAMBDA as ROW_PITCH
from repro.layout.cell import Cell
from repro.tech.process import Process

_Y_WL = 17  # must match the bit cell's word-line band


_Y_WL2 = 50  # dual-port cell's second word-line band


def strap_cell(process: Process, width_lambda: int = 16,
               dual_port: bool = False) -> Cell:
    """Generate a strap column of the given width (lambda).

    ``dual_port=True`` matches the taller dual-port row pitch and
    carries the second word line through as well.

    Raises:
        ValueError: when the width cannot hold a legal well tie.
    """
    if width_lambda < 12:
        raise ValueError(
            f"strap width {width_lambda} lambda too narrow; needs >= 12"
        )
    if dual_port:
        from repro.cells.sram_dp import HEIGHT_LAMBDA as DP_ROW_PITCH

        name, h = "strap_dp", DP_ROW_PITCH
    else:
        name, h = "strap", ROW_PITCH
    b = CellBuilder(name, process)
    w = width_lambda

    b.rect("metal1", 0, 0, w, 4)          # GND rail through
    b.rect("metal1", 0, h - 4, w, h)      # VDD rail through
    b.wire_h("metal3", 0, w, _Y_WL)       # word line through
    if dual_port:
        b.wire_h("metal3", 0, w, _Y_WL2)  # second word line through

    # Substrate/well tie: an n-well tap strip strapped to VDD.
    mid = w / 2
    b.rect("nwell", mid - 6, h - 16, mid + 6, h)
    b.contact("ndiff", mid, h - 8)
    b.wire_v("metal1", h - 8, h, mid)

    b.edge_port("wl", "metal3", "left", _Y_WL - 2.5, _Y_WL + 2.5, 0, "in")
    b.edge_port("wl_r", "metal3", "right", _Y_WL - 2.5, _Y_WL + 2.5, w,
                "out")
    if dual_port:
        b.edge_port("wl2", "metal3", "left", _Y_WL2 - 2.5, _Y_WL2 + 2.5,
                    0, "in")
        b.edge_port("wl2_r", "metal3", "right", _Y_WL2 - 2.5,
                    _Y_WL2 + 2.5, w, "out")
    b.edge_port("gnd", "metal1", "left", 0, 4, 0, "supply")
    b.edge_port("vdd", "metal1", "left", h - 4, h, 0, "supply")
    return b.finish()
