"""Pseudo-NMOS NOR-NOR PLA generator.

The test-and-repair controller "is implemented as a pseudo-NMOS NOR-NOR
PLA loaded with the control code.  During layout synthesis ... the
control code is read in at runtime by BISRAMGEN from two input files
(one for the AND plane, the other for the OR plane).  Changing these
files to implement a different test algorithm is a simple and
straightforward matter."

:func:`pla_cell` generates the layout from the two personality matrices:

* AND plane: one vertical poly column per input literal (true and
  complement), one horizontal metal-2 product line per term; a device is
  drawn at (term, literal) where the personality bit is set, pulling the
  product line toward the per-term ground row.
* OR plane: each product line hands off to a horizontal poly line that
  gates devices pulling vertical metal-2 output lines low.
* Clocked pseudo-NMOS pull-ups: one PMOS per product line (left header)
  and one per output line (top header), gated by the precharge lines.

The logic function itself is evaluated by :class:`repro.bist.trpla.Trpla`
from the same matrices, so layout and behaviour always agree.
"""

from __future__ import annotations

from typing import Sequence

from repro.cells.base import CellBuilder
from repro.layout.cell import Cell
from repro.tech.process import Process

_ROW_PITCH = 16       # product-term pitch, lambda
_COL_PITCH = 18       # literal/output column pitch, lambda
_Y_FIRST_ROW = 14
_X_FIRST_COL = 32


def pla_cell(
    process: Process,
    and_plane: Sequence[Sequence[int]],
    or_plane: Sequence[Sequence[int]],
    name: str = "pla",
) -> Cell:
    """Generate a PLA from its personality matrices.

    Args:
        process: target process.
        and_plane: ``terms x literals`` matrix of 0/1; literal columns
            come in (true, complement) pairs, i.e. ``2 * n_inputs``
            columns.
        or_plane: ``terms x outputs`` matrix of 0/1.
        name: cell name.

    Raises:
        ValueError: on ragged or inconsistent matrices.
    """
    n_terms = len(and_plane)
    if n_terms == 0:
        raise ValueError("AND plane must have at least one product term")
    n_literals = len(and_plane[0])
    if n_literals == 0 or any(len(r) != n_literals for r in and_plane):
        raise ValueError("AND plane rows must be non-empty and equal length")
    if len(or_plane) != n_terms:
        raise ValueError(
            f"OR plane has {len(or_plane)} rows, expected {n_terms}"
        )
    n_outputs = len(or_plane[0]) if or_plane[0] else 0
    if n_outputs == 0 or any(len(r) != n_outputs for r in or_plane):
        raise ValueError("OR plane rows must be non-empty and equal length")

    b = CellBuilder(name, process)

    def row_y(r: int) -> int:
        return _Y_FIRST_ROW + _ROW_PITCH * r

    def lit_x(c: int) -> int:
        return _X_FIRST_COL + _COL_PITCH * c

    and_end = lit_x(n_literals - 1) + 10
    trunk_x = and_end + 6
    handoff_x = trunk_x + 10
    or_first = handoff_x + 14

    def out_x(j: int) -> int:
        return or_first + _COL_PITCH * j

    top_rows = row_y(n_terms - 1)
    height = top_rows + 34
    width = out_x(n_outputs - 1) + 9 + 8

    # Supply distribution: VDD rail left edge + top edge; GND trunk
    # between the planes, per-term GND rows (AND), per-output GND
    # columns (OR), and a bottom GND strip joining them.
    b.rect("metal1", 0, 0, 4, height)                    # VDD left rail
    b.rect("metal1", 0, height - 4, width, height)       # VDD top rail
    b.wire_v("metal1", 0, height - 8, trunk_x)           # GND trunk
    b.rect("metal1", trunk_x - 2, 0, width, 3)           # GND bottom strip

    # Product-term pull-ups (left header) + product metal2 lines.
    b.wire_v("poly", 3, top_rows + 8, 14)                # pc_and gate line
    b.contact("poly", 14, 3)
    for r in range(n_terms):
        y = row_y(r)
        b.rect("pdiff", 7, y - 2, 21, y + 2)
        b.contact("pdiff", 10, y)
        b.wire_h("metal1", 0, 10, y)
        b.contact("pdiff", 18, y)
        b.via1(18, y)
        b.wire_h("metal2", 16, handoff_x, y)             # product line
        b.wire_h("metal1", 26, trunk_x, y + 8)           # GND row
    b.rect("nwell", 2, _Y_FIRST_ROW - 7, 26, top_rows + 7)

    # AND-plane literal columns with input taps at the bottom.
    for c in range(n_literals):
        x = lit_x(c)
        b.wire_v("poly", 3, top_rows + 8, x)
        b.contact("poly", x, 3)

    # AND-plane devices.
    for r in range(n_terms):
        y = row_y(r)
        for c in range(n_literals):
            if not and_plane[r][c]:
                continue
            x = lit_x(c)
            b.rect("ndiff", x - 5, y - 2, x + 5, y + 2)
            b.contact("ndiff", x - 4, y)
            b.via1(x - 4, y)                             # to product line
            b.contact("ndiff", x + 4, y)
            b.wire_v("metal1", y, y + 8, x + 4)          # to GND row

    # Product handoff: metal2 product line down to a poly line that
    # crosses the OR plane.
    or_poly_end = out_x(n_outputs - 1) + 5
    for r in range(n_terms):
        y = row_y(r)
        b.via1(handoff_x, y)
        b.contact("poly", handoff_x, y)
        b.wire_h("poly", handoff_x, or_poly_end, y)

    # OR-plane output columns, gnd columns, and devices.
    or_gnd_top = height - 26
    for j in range(n_outputs):
        x = out_x(j)
        b.wire_v("metal2", 0, height - 6, x)             # output line
        b.wire_v("metal1", 0, or_gnd_top, x + 9)         # GND column
        for r in range(n_terms):
            if not or_plane[r][j]:
                continue
            y = row_y(r)
            b.rect("ndiff", x - 2, y - 6, x + 2, y + 6)
            b.contact("ndiff", x, y + 4)
            b.via1(x, y + 4)                             # to output line
            b.contact("ndiff", x, y - 4)
            b.wire_h("metal1", x, x + 9, y - 4)          # to GND column

    # Output pull-ups (top header) gated by pc_or.
    y_pu = height - 14
    b.wire_h("poly", or_first - 8, or_poly_end, y_pu)    # pc_or gate line
    b.contact("poly", or_first - 8, y_pu)
    for j in range(n_outputs):
        x = out_x(j)
        b.rect("pdiff", x - 2, y_pu - 7, x + 2, y_pu + 7)
        b.contact("pdiff", x, y_pu + 5)
        b.wire_v("metal1", y_pu + 5, height, x)
        b.contact("pdiff", x, y_pu - 5)
        b.via1(x, y_pu - 5)
    b.rect(
        "nwell", or_first - 8, y_pu - 12,
        out_x(n_outputs - 1) + 7, y_pu + 12,
    )

    # Ports.
    for c in range(n_literals):
        kind = "t" if c % 2 == 0 else "c"
        b.point_port(f"in{c // 2}_{kind}", "metal1", lit_x(c), 3, "in")
    for j in range(n_outputs):
        b.edge_port(
            f"out{j}", "metal2", "bottom",
            out_x(j) - 1.5, out_x(j) + 1.5, 0, "out",
        )
    b.point_port("pc_and", "metal1", 14, 3, "in")
    b.point_port("pc_or", "metal1", or_first - 8, y_pu, "in")
    b.edge_port("vdd", "metal1", "left", 0, height, 0, "supply")
    b.edge_port("gnd", "metal1", "bottom", trunk_x - 1.5, trunk_x + 1.5,
                0, "supply")
    return b.finish()
