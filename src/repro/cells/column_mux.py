"""Column multiplexer cell (paper Fig. 2).

"To implement column-multiplexing, the outputs of the column decoders
are sent to pass-transistor multiplexers, which select one set of
bit-line pairs."  One cell carries the two NMOS pass devices for one
bit-line pair; a row of ``bpc`` such cells, each driven by one select
line, forms the log2(bpc)-to-bpc multiplexer of one I/O subarray.
"""

from __future__ import annotations

from repro.cells.base import CellBuilder
from repro.cells.sram6t import WIDTH_LAMBDA as COLUMN_PITCH
from repro.layout.cell import Cell
from repro.tech.process import Process

HEIGHT_LAMBDA = 36


def column_mux_cell(process: Process) -> Cell:
    """Generate the pass-transistor column-mux cell."""
    b = CellBuilder("column_mux", process)
    w, h = COLUMN_PITCH, HEIGHT_LAMBDA

    # Bit lines from the array (top) and data lines to the senseamp
    # (bottom).
    b.wire_v("metal2", 0, h, 4)     # BL
    b.wire_v("metal2", 0, h, 64)    # BLB
    b.wire_v("metal2", 0, 12, 24)   # DL
    b.wire_v("metal2", 0, 12, 44)   # DLB

    # Pass device BL -> DL.
    b.rect("ndiff", 12, 8, 16, 30)
    b.rect("poly", 8, 17, 20, 19)
    b.contact("ndiff", 14, 26)
    b.via1(14, 26)
    b.wire_h("metal2", 4, 14, 26)
    b.contact("ndiff", 14, 10)
    b.via1(14, 10)
    b.wire_h("metal2", 14, 24, 10)

    # Pass device BLB -> DLB.
    b.rect("ndiff", 52, 8, 56, 30)
    b.rect("poly", 48, 17, 60, 19)
    b.contact("ndiff", 54, 26)
    b.via1(54, 26)
    b.wire_h("metal2", 54, 64, 26)
    b.contact("ndiff", 54, 10)
    b.via1(54, 10)
    b.wire_h("metal2", 44, 54, 10)

    # Common select gate wiring across the cell in poly, tapped to
    # metal1 mid-cell so the select line can run horizontally.
    b.wire_h("poly", 8, 60, 18)
    b.contact("poly", 34, 18)
    b.wire_h("metal1", 0, w, 18)

    b.edge_port("bl", "metal2", "top", 2.5, 5.5, h)
    b.edge_port("blb", "metal2", "top", 62.5, 65.5, h)
    b.edge_port("dl", "metal2", "bottom", 22.5, 25.5, 0)
    b.edge_port("dlb", "metal2", "bottom", 42.5, 45.5, 0)
    b.edge_port("sel", "metal1", "left", 16.5, 19.5, 0, "in")
    b.edge_port("sel_r", "metal1", "right", 16.5, 19.5, w, "in")
    return b.finish()
