"""Sequential leaf cells: D flip-flop, up/down counter bit, Johnson bit.

These build ADDGEN (a binary up/down address counter), DATAGEN (a
Johnson counter generating the log2(bpw)+1 background patterns), and
the 6-flip-flop state register of the 59-state test controller.  Layout
uses the verified logic-block pattern; function is modelled behaviourally
in :mod:`repro.bist`.
"""

from __future__ import annotations

from repro.cells.base import CellBuilder
from repro.cells.stdcell import draw_logic_block
from repro.layout.cell import Cell
from repro.tech.process import Process

#: Transistor-column counts, from standard static CMOS realisations:
#: transmission-gate DFF = 16 devices -> 8 columns of N/P pairs; the
#: counter bits add an XOR (up/down toggle steering) or the Johnson
#: feedback mux.
_DFF_GATES = 8
_COUNTER_BIT_GATES = 12
_JOHNSON_BIT_GATES = 10


def dff_cell(process: Process) -> Cell:
    """Positive-edge D flip-flop at the standard row pitch."""
    b = CellBuilder("dff", process)
    block = draw_logic_block(b, _DFF_GATES)
    b.point_port("d", "metal1", block.gate_xs[0], block.y_input_band, "in")
    b.point_port("clk", "metal1", block.gate_xs[1], block.y_input_band, "in")
    b.point_port(
        "q", "metal1", block.gate_xs[-1] + 4, block.y_nmos, "out"
    )
    _supply_ports(b, block.height)
    return b.finish()


def counter_bit_cell(process: Process) -> Cell:
    """One bit of the ADDGEN binary up/down counter.

    "The test address generator ADDGEN needs to generate a forward as
    well as a reverse addressing sequence.  Consequently, it is
    implemented as a binary up/down counter."
    """
    b = CellBuilder("counter_bit", process)
    block = draw_logic_block(b, _COUNTER_BIT_GATES)
    b.point_port("clk", "metal1", block.gate_xs[0], block.y_input_band, "in")
    b.point_port("up", "metal1", block.gate_xs[1], block.y_input_band, "in")
    b.point_port(
        "carry_in", "metal1", block.gate_xs[2], block.y_input_band, "in"
    )
    b.point_port(
        "q", "metal1", block.gate_xs[-1] + 4, block.y_nmos, "out"
    )
    b.point_port(
        "carry_out", "metal1", block.gate_xs[-1] + 4, block.y_pmos, "out"
    )
    _supply_ports(b, block.height)
    return b.finish()


def johnson_bit_cell(process: Process) -> Cell:
    """One stage of the DATAGEN Johnson counter.

    "The test data generator DATAGEN is a Johnson counter that can
    generate log2(bpw)+1 data backgrounds for a bpw-bit RAM word."
    """
    b = CellBuilder("johnson_bit", process)
    block = draw_logic_block(b, _JOHNSON_BIT_GATES)
    b.point_port("clk", "metal1", block.gate_xs[0], block.y_input_band, "in")
    b.point_port("d", "metal1", block.gate_xs[1], block.y_input_band, "in")
    b.point_port(
        "q", "metal1", block.gate_xs[-1] + 4, block.y_nmos, "out"
    )
    b.point_port(
        "qb", "metal1", block.gate_xs[-1] + 4, block.y_pmos, "out"
    )
    _supply_ports(b, block.height)
    return b.finish()


def comparator_slice_cell(process: Process) -> Cell:
    """One XOR slice of the DATAGEN read comparator.

    "This comparison is done using exclusive-OR gates and a bpw-input OR
    gate in a straightforward manner."
    """
    b = CellBuilder("xor_slice", process)
    block = draw_logic_block(b, 6)
    b.point_port("a", "metal1", block.gate_xs[0], block.y_input_band, "in")
    b.point_port("b", "metal1", block.gate_xs[1], block.y_input_band, "in")
    b.point_port(
        "y", "metal1", block.gate_xs[-1] + 4, block.y_nmos, "out"
    )
    _supply_ports(b, block.height)
    return b.finish()


def _supply_ports(b: CellBuilder, height: int) -> None:
    b.edge_port("gnd", "metal1", "left", 0, 4, 0, "supply")
    b.edge_port("vdd", "metal1", "left", height - 4, height, 0, "supply")
