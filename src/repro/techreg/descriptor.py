"""The technology descriptor: one deck as a declarative document.

A descriptor file (TOML or JSON) carries everything
:class:`~repro.tech.process.Process` needs, in one of two deck styles:

* ``deck_type = "lambda"`` — rules are given *in lambda units* as
  overrides/extensions of the builtin SCMOS-like table; lambda is
  derived from ``feature_um`` (lambda = feature/2, on the centimicron
  grid).  This is the portable style the paper's processes use.
* ``deck_type = "absolute"`` — rules are the complete resolved table
  in centimicrons, plus an explicit ``lambda_cu`` drawing grid; the
  style for nm-class decks whose rules are not lambda multiples.

Example (TOML)::

    [tech]
    name = "scn4m"
    description = "..."
    deck_type = "lambda"
    feature_um = 0.4
    metal_layers = 4
    vdd = 3.3

    [rules]
    "width.metal4" = 6          # lambda units

    [layers.metal4]
    cif_name = "CMQ"
    gds_number = 13
    conductor = true
    routing_level = 4

    [nmos]
    node_um = 0.4               # or the full explicit parameter set

    [wire]
    r_ohm_sq = 0.06
    c_af_um = 80.0

Loading only parses and shapes the data; the strict semantic checks
live in :mod:`repro.techreg.validate`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Mapping, Tuple

from repro.core.errors import DescriptorError
from repro.tech.layers import Layer

#: Descriptor file suffixes the registry scans for.
DESCRIPTOR_SUFFIXES = (".toml", ".json")

#: Keys allowed in the ``[tech]`` table.
_TECH_KEYS = frozenset({
    "name", "description", "deck_type", "feature_um", "metal_layers",
    "vdd", "lambda_cu",
})

#: Top-level tables a descriptor may carry.
_TOP_KEYS = frozenset({
    "tech", "rules", "layers", "nmos", "pmos", "wire", "metadata",
})


@dataclass(frozen=True)
class TechDescriptor:
    """A parsed technology descriptor.

    Attributes:
        name: deck name (the value ``--process`` takes).
        description: human-readable note.
        deck_type: ``"lambda"`` or ``"absolute"``.
        feature_um: drawn feature size in microns.
        metal_layers: routing metal count (>= 3).
        vdd: supply voltage in volts.
        lambda_cu: drawing grid in centimicrons.  Derived as
            ``round(feature_um * 50)`` for lambda decks; required
            explicitly for absolute decks.
        rules: rule table — lambda units for lambda decks (overrides
            and extensions of the default table), centimicrons for
            absolute decks (the complete table).
        extra_layers: mask layers beyond the standard 3-metal set.
        nmos / pmos: device parameter mapping — either
            ``{"node_um": f}`` (derive the representative level-1 set
            for that node) or the full explicit parameter set.
        wire: ``{"r_ohm_sq": ..., "c_af_um": ...}``.
        metadata: free-form provenance notes (never fingerprinted).
        source: where the descriptor came from (file path, entry-point
            name, or ``""`` for in-memory); never fingerprinted.
    """

    name: str
    description: str
    deck_type: str
    feature_um: float
    metal_layers: int
    vdd: float
    lambda_cu: int
    rules: Mapping[str, int]
    extra_layers: Tuple[Layer, ...] = ()
    nmos: Mapping[str, float] = field(default_factory=dict)
    pmos: Mapping[str, float] = field(default_factory=dict)
    wire: Mapping[str, float] = field(default_factory=dict)
    metadata: Mapping[str, object] = field(default_factory=dict)
    source: str = ""

    @classmethod
    def from_dict(cls, data: Mapping, source: str = "") -> "TechDescriptor":
        """Shape a parsed document into a descriptor.

        Raises:
            DescriptorError: on structural problems that prevent even
                constructing the descriptor (missing ``[tech]`` table,
                unknown top-level tables, malformed layer entries).
                Field-level semantic problems are left to
                :func:`repro.techreg.validate.validate_descriptor`.
        """
        if not isinstance(data, Mapping):
            raise DescriptorError(
                f"descriptor must be a table/object, got "
                f"{type(data).__name__}", path=source)
        unknown = set(data) - _TOP_KEYS
        if unknown:
            raise DescriptorError(
                f"unknown descriptor table(s): {sorted(unknown)}; "
                f"expected a subset of {sorted(_TOP_KEYS)}", path=source)
        tech = data.get("tech")
        if not isinstance(tech, Mapping):
            raise DescriptorError(
                "descriptor needs a [tech] table", path=source)
        unknown = set(tech) - _TECH_KEYS
        if unknown:
            raise DescriptorError(
                f"unknown [tech] key(s): {sorted(unknown)}", path=source)

        deck_type = str(tech.get("deck_type", ""))
        feature_um = _number(tech.get("feature_um", 0.0))
        if "lambda_cu" in tech:
            lambda_cu = int(tech["lambda_cu"])
        elif deck_type == "lambda":
            lambda_cu = int(round(feature_um * 50))
        else:
            lambda_cu = 0

        layers = []
        for lname, spec in dict(data.get("layers", {})).items():
            if not isinstance(spec, Mapping):
                raise DescriptorError(
                    f"layer {lname!r} must be a table", path=source)
            try:
                layers.append(Layer(
                    name=str(lname),
                    cif_name=str(spec["cif_name"]),
                    gds_number=int(spec["gds_number"]),
                    conductor=bool(spec.get("conductor", False)),
                    routing_level=int(spec.get("routing_level", 0)),
                    color=str(spec.get("color", "#888888")),
                ))
            except KeyError as error:
                raise DescriptorError(
                    f"layer {lname!r} is missing key {error}",
                    path=source) from None

        rules: Dict[str, int] = {}
        for rname, value in dict(data.get("rules", {})).items():
            try:
                rules[str(rname)] = int(value)
            except (TypeError, ValueError):
                raise DescriptorError(
                    f"rule {rname!r} must be an integer, got {value!r}",
                    path=source) from None

        return cls(
            name=str(tech.get("name", "")),
            description=str(tech.get("description", "")),
            deck_type=deck_type,
            feature_um=feature_um,
            metal_layers=int(tech.get("metal_layers", 0)),
            vdd=_number(tech.get("vdd", 0.0)),
            lambda_cu=lambda_cu,
            rules=rules,
            extra_layers=tuple(layers),
            nmos=dict(data.get("nmos", {})),
            pmos=dict(data.get("pmos", {})),
            wire=dict(data.get("wire", {})),
            metadata=dict(data.get("metadata", {})),
            source=source,
        )


def _number(value) -> float:
    try:
        return float(value)
    except (TypeError, ValueError):
        return 0.0


def load_descriptor(path) -> TechDescriptor:
    """Parse one descriptor file (TOML or JSON) into a descriptor.

    Raises:
        DescriptorError: on unreadable files, parse errors, or
            structural problems.  Semantic validation is separate
            (:func:`repro.techreg.validate.check_descriptor`).
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as error:
        raise DescriptorError(
            f"cannot read descriptor {path}: {error}",
            path=str(path)) from None
    suffix = path.suffix.lower()
    if suffix == ".toml":
        import tomllib

        try:
            data = tomllib.loads(raw.decode("utf-8"))
        except (tomllib.TOMLDecodeError, UnicodeDecodeError) as error:
            raise DescriptorError(
                f"descriptor {path} is not valid TOML: {error}",
                path=str(path)) from None
    elif suffix == ".json":
        try:
            data = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise DescriptorError(
                f"descriptor {path} is not valid JSON: {error}",
                path=str(path)) from None
    else:
        raise DescriptorError(
            f"descriptor {path} has unsupported suffix {suffix!r}; "
            f"expected one of {DESCRIPTOR_SUFFIXES}", path=str(path))
    return TechDescriptor.from_dict(data, source=str(path))
