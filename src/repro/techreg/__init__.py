"""Technology-backend registry: rule decks as data, not code.

The paper's premise is design-rule independence — "a range of 3-metal
processes ... may be chosen by the user" — and this package makes the
choice *pluggable*.  A technology is described by a
:class:`~repro.techreg.descriptor.TechDescriptor` file (TOML or JSON:
lambda or absolute rule deck, layer map, MOS parameters, supply and
wire parasitics, metadata), checked by a strict validator
(:mod:`repro.techreg.validate`), and resolved into the same
:class:`~repro.tech.process.Process` object the builtin presets
produce.

Decks are discovered from four sources, later overriding earlier:

1. the builtin presets (``cda05``/``mos06``/``cda07``/``mos08``),
2. descriptor files packaged under ``repro/techreg/decks/``
   (``scn4m``, ``pfin7``),
3. ``repro.techs`` entry points exported by installed packages,
4. search directories — the ``REPRO_TECH_DIR`` environment variable
   (``os.pathsep``-separated), then any ``--tech-dir`` passed on the
   command line.

Every resolved deck has a content-hash *fingerprint*
(:meth:`repro.tech.process.Process.fingerprint`) folded into
``RamConfig.digest``, the artifact-store bundle key, and campaign
journal fingerprints: editing a deck file changes every cache key
derived from it, so no stale artifact is ever served across a deck
edit.
"""

from repro.techreg.descriptor import TechDescriptor, load_descriptor
from repro.techreg.registry import (
    TechRegistry,
    default_registry,
    resolve_process,
)
from repro.techreg.validate import (
    FieldError,
    check_descriptor,
    validate_descriptor,
)

__all__ = [
    "TechDescriptor",
    "load_descriptor",
    "TechRegistry",
    "default_registry",
    "resolve_process",
    "FieldError",
    "check_descriptor",
    "validate_descriptor",
]
