"""Deck discovery and resolution.

The registry is the single lookup path behind
:func:`repro.tech.process.get_process`.  It merges four sources, later
overriding earlier:

1. builtin presets (plain :class:`~repro.tech.process.Process` objects),
2. descriptor files packaged under ``repro/techreg/decks/``,
3. ``repro.techs`` entry points of installed packages,
4. search directories — ``REPRO_TECH_DIR`` (``os.pathsep``-separated),
   then directories added with :meth:`TechRegistry.add_search_dir`
   (the CLI's ``--tech-dir``).

File-backed decks are cached per ``(mtime_ns, size)`` and re-validated
when the file changes, so editing a deck mid-process invalidates within
one :meth:`~TechRegistry.resolve` call — the same edit also changes the
deck fingerprint and with it every digest/bundle/journal key downstream.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.core.errors import DescriptorError, UnknownProcessError
from repro.tech.layers import STANDARD_LAYERS, LayerSet
from repro.tech.process import Process
from repro.tech.rules import DesignRules, _DEFAULT_LAMBDA_RULES
from repro.tech.spice_params import MosParams, nmos_for_node, pmos_for_node
from repro.techreg.descriptor import (
    DESCRIPTOR_SUFFIXES,
    TechDescriptor,
    load_descriptor,
)
from repro.techreg.validate import check_descriptor

#: Entry-point group third-party packages export decks under.
ENTRY_POINT_GROUP = "repro.techs"

#: Environment variable naming extra search directories.
TECH_DIR_ENV = "REPRO_TECH_DIR"


def resolve_process(desc: TechDescriptor) -> Process:
    """Build a :class:`Process` from a *validated* descriptor.

    Pure function — no registry state.  Callers are expected to run
    :func:`repro.techreg.validate.check_descriptor` first; this only
    performs the construction.
    """
    layers = LayerSet(tuple(STANDARD_LAYERS) + desc.extra_layers)
    if desc.deck_type == "absolute":
        rules = DesignRules.absolute(desc.lambda_cu, desc.rules)
    else:
        overrides = {k: v for k, v in desc.rules.items()
                     if k in _DEFAULT_LAMBDA_RULES}
        extensions = {k: v for k, v in desc.rules.items()
                      if k not in _DEFAULT_LAMBDA_RULES}
        rules = DesignRules.scalable(desc.lambda_cu, overrides or None,
                                     extensions or None)
    return Process(
        name=desc.name,
        description=desc.description,
        feature_um=desc.feature_um,
        metal_layers=desc.metal_layers,
        vdd=desc.vdd,
        layers=layers,
        rules=rules,
        nmos=_mos_params("nmos", desc.nmos, desc.feature_um),
        pmos=_mos_params("pmos", desc.pmos, desc.feature_um),
        wire_r_ohm_sq=float(desc.wire["r_ohm_sq"]),
        wire_c_af_um=float(desc.wire["c_af_um"]),
    )


def _mos_params(polarity: str, spec, feature_um: float) -> MosParams:
    if "node_um" in spec:
        derive = nmos_for_node if polarity == "nmos" else pmos_for_node
        return derive(float(spec["node_um"]))
    return MosParams(
        polarity=polarity,
        vto=float(spec["vto"]),
        kp=float(spec["kp"]),
        lambda_=float(spec["lambda_"]),
        cox=float(spec["cox"]),
        cj=float(spec["cj"]),
        cjsw=float(spec["cjsw"]),
        min_l_um=float(spec["min_l_um"]),
    )


@dataclass
class _Entry:
    """One registered deck."""

    name: str
    origin: str                       # builtin | packaged | entry-point | dir
    path: str = ""                    # descriptor file, "" for builtins
    process: Optional[Process] = None  # resolved (builtins: always)
    descriptor: Optional[TechDescriptor] = None
    stat: Optional[Tuple[int, int]] = None  # (mtime_ns, size) when file-backed

    def fresh(self) -> bool:
        """Whether the cached resolution still matches the file on disk."""
        if not self.path:
            return self.process is not None
        if self.process is None or self.stat is None:
            return False
        try:
            st = os.stat(self.path)
        except OSError:
            return False
        return (st.st_mtime_ns, st.st_size) == self.stat


class TechRegistry:
    """Name -> deck lookup over all discovery sources.

    Scans lazily on first use; :meth:`rescan` forces a fresh pass (a
    resolve miss triggers one automatic rescan before failing, so decks
    dropped into a search directory mid-process are picked up).
    """

    def __init__(self, builtins: Optional[Dict[str, Process]] = None,
                 use_entry_points: bool = True,
                 packaged_dir: Optional[Path] = None) -> None:
        if builtins is None:
            from repro.tech.process import _PRESETS
            builtins = dict(_PRESETS)
        self._builtins = builtins
        self._use_entry_points = use_entry_points
        self._packaged_dir = (Path(__file__).parent / "decks"
                              if packaged_dir is None else packaged_dir)
        self._search_dirs: List[Path] = []
        self._entries: Optional[Dict[str, _Entry]] = None
        #: (source, message) pairs for decks that failed to load during
        #: a scan — surfaced by ``repro tech list``, never fatal.
        self.scan_errors: List[Tuple[str, str]] = []

    # -- configuration ------------------------------------------------------

    def add_search_dir(self, path) -> None:
        """Append a ``--tech-dir`` directory (highest precedence)."""
        self._search_dirs.append(Path(path))
        self._entries = None

    # -- discovery ----------------------------------------------------------

    def rescan(self) -> None:
        """Drop all cached state and walk every source again."""
        self._entries = None
        self._scan()

    def _scan(self) -> Dict[str, _Entry]:
        if self._entries is not None:
            return self._entries
        entries: Dict[str, _Entry] = {}
        self.scan_errors = []
        for name, process in self._builtins.items():
            entries[name] = _Entry(name=name, origin="builtin",
                                   process=process)
        self._scan_dir(entries, self._packaged_dir, "packaged")
        if self._use_entry_points:
            self._scan_entry_points(entries)
        env = os.environ.get(TECH_DIR_ENV, "")
        for part in env.split(os.pathsep):
            if part:
                self._scan_dir(entries, Path(part), "dir")
        for path in self._search_dirs:
            self._scan_dir(entries, path, "dir")
        self._entries = entries
        return entries

    def _scan_dir(self, entries: Dict[str, _Entry], directory: Path,
                  origin: str) -> None:
        try:
            files = sorted(p for p in directory.iterdir()
                           if p.suffix.lower() in DESCRIPTOR_SUFFIXES)
        except OSError:
            return
        for path in files:
            try:
                desc = load_descriptor(path)
            except DescriptorError as error:
                self.scan_errors.append((str(path), str(error)))
                continue
            if not desc.name:
                self.scan_errors.append(
                    (str(path), "descriptor has no [tech] name"))
                continue
            entries[desc.name] = _Entry(name=desc.name, origin=origin,
                                        path=str(path), descriptor=desc)

    def _scan_entry_points(self, entries: Dict[str, _Entry]) -> None:
        try:
            from importlib.metadata import entry_points
            eps = entry_points(group=ENTRY_POINT_GROUP)
        except Exception as error:           # metadata backends vary
            self.scan_errors.append(("entry-points", str(error)))
            return
        for ep in eps:
            source = f"entry-point {ep.name}"
            try:
                loaded = ep.load()
                if callable(loaded):
                    loaded = loaded()
                if isinstance(loaded, TechDescriptor):
                    desc = loaded
                elif isinstance(loaded, (str, Path)):
                    desc = load_descriptor(loaded)
                else:
                    desc = TechDescriptor.from_dict(loaded, source=source)
            except Exception as error:
                self.scan_errors.append((source, str(error)))
                continue
            name = desc.name or ep.name
            entries[name] = _Entry(name=name, origin="entry-point",
                                   path=desc.source, descriptor=desc)

    # -- queries ------------------------------------------------------------

    def names(self) -> Tuple[str, ...]:
        """All registered deck names, sorted."""
        return tuple(sorted(self._scan()))

    def entries(self) -> Tuple[Dict[str, str], ...]:
        """Metadata rows for ``repro tech list``.

        Each row: name, origin, source path, feature size, vdd, and the
        deck fingerprint.  Decks that fail to resolve get an ``error``
        column instead of a fingerprint.
        """
        rows = []
        for name in self.names():
            row = {"name": name}
            entry = self._scan()[name]
            row["origin"] = entry.origin
            row["path"] = entry.path
            try:
                process = self.resolve(name)
            except DescriptorError as error:
                row["error"] = str(error)
            else:
                row["feature_um"] = f"{process.feature_um:g}"
                row["vdd"] = f"{process.vdd:g}"
                row["metals"] = str(process.metal_layers)
                row["fingerprint"] = process.fingerprint()
            rows.append(row)
        return tuple(rows)

    def descriptor(self, name: str) -> Optional[TechDescriptor]:
        """The descriptor behind ``name`` (None for plain builtins)."""
        entries = self._scan()
        if name not in entries:
            self.rescan()
            entries = self._scan()
        if name not in entries:
            raise UnknownProcessError(name, self.names())
        entry = entries[name]
        if entry.path and not entry.fresh():
            # Pick up edits (including a changed [tech] name).
            entry.descriptor = load_descriptor(entry.path)
            entry.process = None
        return entry.descriptor

    def resolve(self, name: str) -> Process:
        """Look a deck up by name and build its :class:`Process`.

        Raises:
            UnknownProcessError: name registered nowhere (after one
                automatic rescan).
            DescriptorError: the deck exists but fails validation.
        """
        entries = self._scan()
        if name not in entries:
            self.rescan()
            entries = self._scan()
            if name not in entries:
                raise UnknownProcessError(name, self.names())
        entry = entries[name]
        if entry.fresh():
            return entry.process
        if entry.path:
            entry.descriptor = load_descriptor(entry.path)
            st = os.stat(entry.path)
            entry.stat = (st.st_mtime_ns, st.st_size)
        if entry.descriptor is None:
            raise UnknownProcessError(name, self.names())
        check_descriptor(entry.descriptor)
        entry.process = resolve_process(entry.descriptor)
        return entry.process


_DEFAULT: Optional[TechRegistry] = None


def default_registry() -> TechRegistry:
    """The process-wide registry :func:`repro.tech.get_process` uses."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = TechRegistry()
    return _DEFAULT
