"""Strict descriptor validation: reject bad decks at load time.

A deck that passes here resolves into a usable
:class:`~repro.tech.process.Process`; a deck that fails is rejected
with *per-field* errors (``repro tech validate`` prints one line per
offending field) instead of crashing a generator mid-draw.

Checks, per the registry contract:

* required rules present — absolute decks must carry the complete
  default table; lambda decks may only override known rules or add
  well-formed extensions;
* monotone width/spacing sanity — metal widths and spacings must be
  non-decreasing with routing level, and every geometric rule positive;
* layer references resolve — every layer named inside a rule must
  exist in the (standard + extra) layer set, the layer set must cover
  every routing level up to ``metal_layers``, and each extra metal
  level must bring its via rules along;
* device and supply sanity — vto signs, positive transconductance,
  positive supply and wire parasitics.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Mapping

from repro.core.errors import DescriptorError
from repro.tech.layers import STANDARD_LAYERS
from repro.tech.rules import _DEFAULT_LAMBDA_RULES, required_rule_names
from repro.techreg.descriptor import TechDescriptor

#: Rule-name prefixes a deck may use.
_RULE_PREFIXES = ("width.", "space.", "enclose.", "overhang.", "touch.")

#: Tokens inside rule names that are generic, not layer references.
_NON_LAYER_TOKENS = frozenset({"well", "diff", "gate", "corner", "edge",
                               "to"})

#: Explicit MOS parameter sets must carry exactly these keys
#: (``polarity`` is implied by the table name).
_MOS_KEYS = frozenset({"vto", "kp", "lambda_", "cox", "cj", "cjsw",
                       "min_l_um"})

_NAME_RE = re.compile(r"^[A-Za-z][A-Za-z0-9_-]*$")


@dataclass(frozen=True)
class FieldError:
    """One offending descriptor field."""

    field: str
    message: str

    def __str__(self) -> str:
        return f"{self.field}: {self.message}"


def validate_descriptor(desc: TechDescriptor) -> List[FieldError]:
    """All field errors of one descriptor (empty when valid)."""
    errors: List[FieldError] = []

    def bad(field: str, message: str) -> None:
        errors.append(FieldError(field, message))

    # -- identity -----------------------------------------------------------
    if not desc.name or not _NAME_RE.match(desc.name):
        bad("tech.name",
            f"must match {_NAME_RE.pattern}, got {desc.name!r}")
    if desc.deck_type not in ("lambda", "absolute"):
        bad("tech.deck_type",
            f"must be 'lambda' or 'absolute', got {desc.deck_type!r}")
    if desc.feature_um <= 0:
        bad("tech.feature_um",
            f"must be positive, got {desc.feature_um!r}")
    if desc.metal_layers < 3:
        bad("tech.metal_layers",
            f"needs >= 3 routing metals (the tool and its cost model "
            f"refuse 2-metal processes), got {desc.metal_layers!r}")
    if desc.vdd <= 0:
        bad("tech.vdd", f"must be positive, got {desc.vdd!r}")
    if desc.lambda_cu <= 0:
        bad("tech.lambda_cu",
            f"must be a positive centimicron grid, got {desc.lambda_cu!r}")
    elif (desc.deck_type == "lambda" and desc.feature_um > 0
          and desc.lambda_cu != int(round(desc.feature_um * 50))):
        bad("tech.lambda_cu",
            f"lambda decks need lambda = feature/2 on the centimicron "
            f"grid: feature {desc.feature_um} um implies "
            f"{int(round(desc.feature_um * 50))} cu, got {desc.lambda_cu}")

    # -- layer set ----------------------------------------------------------
    layer_names = {l.name for l in STANDARD_LAYERS}
    levels: Dict[int, str] = {
        l.routing_level: l.name for l in STANDARD_LAYERS if l.routing_level
    }
    gds = {l.gds_number for l in STANDARD_LAYERS}
    for layer in desc.extra_layers:
        where = f"layers.{layer.name}"
        if layer.name in layer_names:
            bad(where, "clashes with a standard layer name")
            continue
        if layer.gds_number in gds:
            bad(where, f"gds_number {layer.gds_number} already taken")
        if layer.routing_level:
            if layer.routing_level in levels:
                bad(where,
                    f"routing level {layer.routing_level} already "
                    f"taken by {levels[layer.routing_level]!r}")
            else:
                levels[layer.routing_level] = layer.name
        layer_names.add(layer.name)
        gds.add(layer.gds_number)
    if desc.metal_layers >= 3:
        for level in range(1, desc.metal_layers + 1):
            if level not in levels:
                bad("tech.metal_layers",
                    f"no layer at routing level {level} "
                    f"(metal_layers = {desc.metal_layers})")

    # -- rule table ---------------------------------------------------------
    defaults = set(_DEFAULT_LAMBDA_RULES)
    for name, value in sorted(desc.rules.items()):
        where = f"rules.{name}"
        if not name.startswith(_RULE_PREFIXES):
            bad(where,
                f"unknown rule prefix; expected one of {_RULE_PREFIXES}")
            continue
        for token in name.split(".", 1)[1].split("_"):
            if token not in _NON_LAYER_TOKENS and token not in layer_names:
                bad(where, f"references unknown layer {token!r}")
        if name.startswith("touch."):
            if value not in (0, 1):
                bad(where, f"flag must be 0 or 1, got {value}")
        elif value <= 0:
            bad(where, f"geometric rule must be positive, got {value}")

    effective = dict(desc.rules)
    if desc.deck_type == "lambda":
        effective = dict(_DEFAULT_LAMBDA_RULES)
        effective.update(desc.rules)
    elif desc.deck_type == "absolute":
        missing = sorted(required_rule_names() - set(desc.rules))
        if missing:
            bad("rules",
                f"absolute deck is missing required rule(s): {missing}")

    # Each metal level needs width/space; each level above metal1 needs
    # its via cut and both enclosures.
    if desc.metal_layers >= 3:
        for level in range(1, desc.metal_layers + 1):
            for kind in ("width", "space"):
                key = f"{kind}.metal{level}"
                if key not in effective:
                    bad(f"rules.{key}",
                        f"required for metal_layers = {desc.metal_layers}")
        for level in range(2, desc.metal_layers + 1):
            via = f"via{level - 1}"
            for key in (f"width.{via}", f"space.{via}",
                        f"enclose.metal{level - 1}_{via}",
                        f"enclose.metal{level}_{via}"):
                if key not in effective:
                    bad(f"rules.{key}",
                        f"required for the metal{level - 1}/metal{level} "
                        f"via stack")

    # Monotone sanity: widths and spacings must not shrink as the
    # routing level rises (upper metals are thicker/coarser).
    for kind in ("width", "space"):
        for level in range(1, desc.metal_layers):
            low = effective.get(f"{kind}.metal{level}")
            high = effective.get(f"{kind}.metal{level + 1}")
            if low is not None and high is not None and high < low:
                bad(f"rules.{kind}.metal{level + 1}",
                    f"{kind} {high} below metal{level}'s {low}; metal "
                    f"{kind}s must be non-decreasing with level")

    # -- devices ------------------------------------------------------------
    for table, params in (("nmos", desc.nmos), ("pmos", desc.pmos)):
        errors.extend(_check_mos(table, params, desc.feature_um))

    # -- wire parasitics ----------------------------------------------------
    for key in ("r_ohm_sq", "c_af_um"):
        value = desc.wire.get(key)
        if not isinstance(value, (int, float)) or value <= 0:
            bad(f"wire.{key}", f"must be a positive number, got {value!r}")

    return errors


def _check_mos(table: str, params: Mapping[str, float],
               feature_um: float) -> List[FieldError]:
    """Field errors of one device-parameter table."""
    errors: List[FieldError] = []
    if not params:
        errors.append(FieldError(
            table, "missing: give {node_um = ...} or the explicit "
                   "level-1 parameter set"))
        return errors
    if "node_um" in params:
        extra = set(params) - {"node_um"}
        if extra:
            errors.append(FieldError(
                table, f"node_um cannot be mixed with explicit "
                       f"parameters {sorted(extra)}"))
        node = params["node_um"]
        if not isinstance(node, (int, float)) or not 0.3 <= node <= 2.0:
            errors.append(FieldError(
                f"{table}.node_um",
                f"derived parameters only exist for 0.3-2.0 um nodes, "
                f"got {node!r}; nm-class decks must give explicit "
                f"parameters"))
        return errors
    missing = sorted(_MOS_KEYS - set(params))
    unknown = sorted(set(params) - _MOS_KEYS)
    if missing:
        errors.append(FieldError(table, f"missing parameter(s): {missing}"))
    if unknown:
        errors.append(FieldError(table, f"unknown parameter(s): {unknown}"))
    if missing or unknown:
        return errors
    vto = params["vto"]
    if table == "nmos" and vto <= 0:
        errors.append(FieldError(f"{table}.vto",
                                 f"NMOS vto must be positive, got {vto}"))
    if table == "pmos" and vto >= 0:
        errors.append(FieldError(f"{table}.vto",
                                 f"PMOS vto must be negative, got {vto}"))
    for key in ("kp", "cox", "cj", "cjsw", "min_l_um"):
        if params[key] <= 0:
            errors.append(FieldError(
                f"{table}.{key}",
                f"must be positive, got {params[key]}"))
    return errors


def check_descriptor(desc: TechDescriptor) -> None:
    """Raise :class:`DescriptorError` when the descriptor is invalid.

    The exception carries ``field_errors`` so callers can render the
    same per-field report :func:`validate_descriptor` returns.
    """
    errors = validate_descriptor(desc)
    if errors:
        where = f" ({desc.source})" if desc.source else ""
        raise DescriptorError(
            f"descriptor {desc.name or '<unnamed>'}{where} has "
            f"{len(errors)} error(s): "
            + "; ".join(str(e) for e in errors),
            path=desc.source,
            field_errors=tuple((e.field, e.message) for e in errors),
        )
