"""The concurrent macro server: compile-as-a-service in one process.

A :class:`MacroServer` turns the compiler into a long-lived service
the way the ROADMAP's serving story demands: a thread pool executes
builds, the artifact store absorbs repeats across time, and three
mechanisms absorb repeats and overload *in the moment*:

* **Single-flight deduplication** — concurrent requests for the same
  bundle key coalesce onto one in-flight build; N identical requests
  cost exactly one compilation (then all N are served its artifacts).
* **Bounded queue with backpressure** — at most ``queue_limit``
  requests may be queued-or-running; beyond that, ``submit`` raises
  :class:`~repro.core.errors.ServiceUnavailable` immediately instead
  of letting latency grow without bound.
* **Graceful drain** — ``shutdown(drain=True)`` stops admissions,
  lets every in-flight build finish (they are expensive; killing them
  wastes the work), then stops the pool.

Metrics are first-class: per-request latency percentiles, hit/build/
coalesce/reject counts, plus the store's and stage cache's own stats,
all JSON-serializable for the HTTP ``/stats`` endpoint
(:mod:`repro.service.http`).
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import Counter
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bist.march import IFA_9, MarchTest, parse_march
from repro.core.config import RamConfig
from repro.core.durability import fsync_dir
from repro.core.errors import ConfigError, ServiceUnavailable
from repro.core.stages import StageCache
from repro.service.bundle import bundle_key, compile_cached
from repro.service.store import ArtifactStore


@dataclass(frozen=True)
class CompileResponse:
    """What the server returns for one request.

    Attributes:
        key: the bundle's content address.
        cached: True when the bytes came from the artifact store.
        elapsed_s: wall time of the underlying build (shared across
            coalesced requests; per-caller latency lives in the
            server's metrics).
        artifacts: artifact name -> bytes.
    """

    key: str
    cached: bool
    elapsed_s: float
    artifacts: Dict[str, bytes]

    def manifest(self) -> dict:
        """Hash/size summary, safe to serialise without the payload."""
        return {
            name: {
                "sha256": hashlib.sha256(data).hexdigest(),
                "bytes": len(data),
            }
            for name, data in sorted(self.artifacts.items())
        }


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile over an ascending sequence."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      round(q * (len(sorted_values) - 1))))
    return sorted_values[rank]


def latency_summary(latencies: Sequence[float]) -> dict:
    """p50/p90/p99/max/mean summary of a latency sample, in seconds.

    An empty sample returns every key zeroed rather than a bare
    ``{"count": 0}``: consumers (dashboards, the bench harness, tests)
    index ``p50_s`` unconditionally, and scraping ``/stats`` before the
    first request completes must not crash them.
    """
    if not latencies:
        return {"count": 0, "mean_s": 0.0, "p50_s": 0.0,
                "p90_s": 0.0, "p99_s": 0.0, "max_s": 0.0}
    ordered = sorted(latencies)
    return {
        "count": len(ordered),
        "mean_s": round(sum(ordered) / len(ordered), 6),
        "p50_s": round(percentile(ordered, 0.50), 6),
        "p90_s": round(percentile(ordered, 0.90), 6),
        "p99_s": round(percentile(ordered, 0.99), 6),
        "max_s": round(ordered[-1], 6),
    }


class MacroServer:
    """Thread-pool compile service with single-flight and backpressure.

    Args:
        store: optional :class:`ArtifactStore` consulted before (and
            fed after) every build.
        workers: build threads.
        queue_limit: max requests queued-or-running before
            :class:`ServiceUnavailable` backpressure kicks in
            (coalesced joins never count — they add no work).
        stage_cache: optional shared :class:`StageCache`; defaults to
            a private instance so different-policy requests for the
            same geometry share stage products.
        builder: the cached-compile callable, signature-compatible
            with :func:`repro.service.bundle.compile_cached`
            (injectable for tests and benchmarks).
        backend: optional
            :class:`~repro.service.backend.ProcessPoolBackend`; when
            given, builds run on supervised worker *processes* (the
            thread pool then only coordinates), warm store hits are
            still served from this process, and the server owns the
            backend's shutdown.  Mutually exclusive with ``builder``.
        wal: optional :class:`~repro.service.wal.RequestLog`; when
            given, every admitted request is journaled before its
            build starts, and requests left pending by a crashed
            predecessor are replayed in the background at startup
            (the server serves normally while replaying; ``ready``
            flips true when the backlog drains).
        governor: optional
            :class:`~repro.service.governor.ResourceGovernor`; its
            verdict gates every admission — shedding raises
            :class:`ServiceUnavailable` with its advice, read_only
            degrades the server to serving store hits.
        lease: optional :class:`~repro.service.ha.Lease`.  A primary
            acquires it at construction (refusal is fatal: two
            primaries on one store is split-brain) and heartbeats it;
            a standby watches it and promotes itself on expiry or
            handoff.
        role: ``"primary"`` (default) builds; ``"standby"`` serves
            store hits read-only until :meth:`promote` (requires
            ``store`` and ``lease``, never opens the WAL early — the
            primary owns that file until the handoff).
        batch_limit: max items one :meth:`submit_batch` may carry.
        standby_poll_s: lease-watch interval for standbys.
    """

    def __init__(
        self,
        store: Optional[ArtifactStore] = None,
        workers: int = 4,
        queue_limit: int = 64,
        stage_cache: Optional[StageCache] = None,
        builder: Optional[Callable] = None,
        backend=None,
        wal=None,
        governor=None,
        lease=None,
        role: str = "primary",
        batch_limit: int = 64,
        standby_poll_s: float = 0.25,
    ) -> None:
        if workers < 1:
            raise ConfigError("workers must be >= 1")
        if queue_limit < 1:
            raise ConfigError("queue_limit must be >= 1")
        if batch_limit < 1:
            raise ConfigError("batch_limit must be >= 1")
        if builder is not None and backend is not None:
            raise ConfigError(
                "builder and backend are mutually exclusive")
        if role not in ("primary", "standby"):
            raise ConfigError(
                f"role must be 'primary' or 'standby', got {role!r}")
        if role == "standby" and store is None:
            raise ConfigError(
                "a standby serves store hits; it needs a store")
        if role == "standby" and lease is None:
            raise ConfigError(
                "a standby watches the primary's lease; pass one")
        self.store = store
        self.workers = workers
        self.queue_limit = queue_limit
        self.batch_limit = batch_limit
        self.standby_poll_s = standby_poll_s
        self.stage_cache = stage_cache if stage_cache is not None \
            else StageCache()
        self._builder = builder or compile_cached
        self._backend = backend
        self.governor = governor
        self.lease = lease
        self.role = role
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="macroserver")
        # Reentrant: done-callbacks registered under the lock can fire
        # synchronously in this thread when the future is already done.
        self._lock = threading.RLock()
        self._inflight: Dict[str, Future] = {}
        self._admitted = 0  # queued + running (coalesced joins excluded)
        self._draining = False
        # -- metrics --
        self._request_latencies: List[float] = []
        self._build_latencies: List[float] = []
        self._requests = 0
        self._builds = 0
        self._store_hits = 0
        self._coalesced = 0
        self._rejected = 0
        self._failures = 0
        self._shed = 0
        self._promotions = 0
        self._endpoints: Counter = Counter()
        self._started = time.monotonic()
        # -- write-ahead log + crash recovery + HA threads --
        self._wal = wal
        self._wal_replayed = 0
        self._wal_replay_failures = 0
        self._ready = threading.Event()
        self._replay_thread: Optional[threading.Thread] = None
        self._ha_stop = threading.Event()
        self._heartbeat_thread: Optional[threading.Thread] = None
        self._watch_thread: Optional[threading.Thread] = None
        if role == "primary":
            if self.lease is not None:
                if not self.lease.acquire():
                    raise ServiceUnavailable(
                        "another primary holds the liveness lease at "
                        f"{self.lease.path}; start this server as a "
                        f"standby instead", reason="lease_held")
                self._start_heartbeat()
            self._open_wal_and_replay()
        else:
            # The standby must not open the WAL — the primary owns
            # that file until promotion.  It is ready immediately: its
            # whole job is serving store hits from request one.
            self._ready.set()
            self._watch_thread = threading.Thread(
                target=self._watch_lease,
                name="macroserver-lease-watch", daemon=True)
            self._watch_thread.start()

    # -- request path -------------------------------------------------------

    def submit(self, config: RamConfig, march: MarchTest = IFA_9,
               signoff: Optional[str] = None) -> "Future[CompileResponse]":
        """Admit one request; returns the (possibly shared) future.

        Raises:
            ServiceUnavailable: when draining, shedding under resource
                pressure, degraded/standby with a cold key, or when
                admitting would exceed ``queue_limit`` (backpressure —
                retry later).
        """
        key = bundle_key(config, march, signoff)
        t_submit = time.monotonic()
        # Sample the governor outside the lock: its probes touch disk
        # and /proc, and a stale-by-one-request verdict is harmless.
        pressure = (self.governor.state()
                    if self.governor is not None else "admitting")
        with self._lock:
            if self._draining:
                self._rejected += 1
                raise ServiceUnavailable(
                    "macro server is draining for shutdown",
                    reason="draining")
            self._requests += 1
            existing = self._inflight.get(key)
            if existing is not None:
                self._coalesced += 1
                self._observe_request(existing, t_submit)
                return existing
            if self.role == "standby":
                return self._serve_hit_locked(key, t_submit,
                                              "standby_miss")
            if pressure == "read_only":
                return self._serve_hit_locked(key, t_submit,
                                              "resource_pressure")
            if pressure == "shedding":
                self._requests -= 1
                self._rejected += 1
                self._shed += 1
                raise ServiceUnavailable(
                    "macro server is shedding load under resource "
                    "pressure (low disk or high memory); retry later",
                    reason="resource_pressure",
                    retry_after_s=self.governor.retry_after_s)
            if self._admitted >= self.queue_limit:
                self._requests -= 1
                self._rejected += 1
                raise ServiceUnavailable(
                    f"macro server saturated "
                    f"({self.queue_limit} request(s) queued or "
                    f"running); retry later", reason="saturated")
            self._admitted += 1
            request_id = None
            if self._wal is not None:
                # Journaled (and fsynced) before any work is
                # dispatched: an admitted request survives a kill.
                request_id = self._wal.admit(
                    key=key, config=config.to_dict(),
                    march_name=march.name,
                    march_notation=str(march), signoff=signoff)
            future: "Future[CompileResponse]" = self._pool.submit(
                self._run, key, config, march, signoff)
            self._inflight[key] = future
            future.add_done_callback(
                lambda f, key=key: self._retire(key, f))
            if request_id is not None:
                future.add_done_callback(
                    lambda f, rid=request_id: self._wal_done(rid, f))
            self._observe_request(future, t_submit)
            return future

    def compile(self, config: RamConfig, march: MarchTest = IFA_9,
                signoff: Optional[str] = None) -> CompileResponse:
        """Blocking submit: the response, or the build's exception."""
        return self.submit(config, march, signoff=signoff).result()

    def submit_batch(
        self, items: Sequence[Tuple[RamConfig, MarchTest,
                                    Optional[str]]],
    ) -> List[Tuple[str, object]]:
        """Admit many requests; partial-failure semantics.

        Each item is a ``(config, march, signoff)`` triple.  Returns a
        list aligned with ``items`` whose entries are ``("future", f)``
        for admitted (possibly coalesced) requests or ``("error", e)``
        for ones refused at admission — one rejected item never fails
        the rest of the batch.  Every admitted item is an individual
        WAL admit and coalesces against in-flight singles via the same
        single-flight map.

        Raises:
            ConfigError: the batch itself exceeds ``batch_limit``
                (the HTTP layer maps this to 413 before calling).
        """
        if len(items) > self.batch_limit:
            raise ConfigError(
                f"batch of {len(items)} item(s) exceeds the batch "
                f"limit of {self.batch_limit}")
        results: List[Tuple[str, object]] = []
        for config, march, signoff in items:
            try:
                results.append(
                    ("future", self.submit(config, march,
                                           signoff=signoff)))
            except Exception as error:
                results.append(("error", error))
        return results

    def count_endpoint(self, name: str) -> None:
        """Bump the per-endpoint request counter (HTTP layer hook)."""
        with self._lock:
            self._endpoints[name] += 1

    def _serve_hit_locked(self, key: str, t_submit: float,
                          miss_reason: str) -> "Future[CompileResponse]":
        """Read-only admission: a store hit or a 503, never a build.

        Shared by the standby role (no build rights until promotion)
        and the governor's read_only degraded mode (no disk budget
        left to build with).  Caller holds the lock.
        """
        artifacts = self.store.get(key) if self.store is not None \
            else None
        if artifacts is None:
            self._requests -= 1
            self._rejected += 1
            if miss_reason == "resource_pressure":
                self._shed += 1
                raise ServiceUnavailable(
                    "disk budget exhausted: serving store hits only "
                    "until space frees up",
                    reason="resource_pressure",
                    retry_after_s=self.governor.retry_after_s)
            raise ServiceUnavailable(
                "standby serves cache hits only until promoted; "
                "retry against the primary or wait for failover",
                reason="standby_miss")
        self._store_hits += 1
        future: "Future[CompileResponse]" = Future()
        future.set_result(CompileResponse(
            key=key, cached=True, elapsed_s=0.0, artifacts=artifacts))
        self._observe_request(future, t_submit)
        return future

    # -- high availability --------------------------------------------------

    def promote(self) -> bool:
        """Standby → primary: take the lease, open + replay the WAL.

        Idempotent (promoting a primary returns True immediately).
        Returns False when a live holder still exists — another
        standby won the race, or the primary came back; the caller
        keeps watching.
        """
        with self._lock:
            if self.role == "primary":
                return True
            if self._draining:
                return False
            if self.lease is not None and not self.lease.acquire():
                return False
            self.role = "primary"
            self._promotions += 1
        if self.lease is not None:
            self._start_heartbeat()
        self._open_wal_and_replay()
        return True

    def drain(self) -> None:
        """Stop admitting, finish in-flight work, then hand off.

        The ordering is the contract: new admissions stop first, every
        in-flight build (and the replay backlog) completes, the WAL is
        compacted and the store directory fsynced, and only *then*
        does the lease flip to ``released`` — so a promoting standby
        inherits a quiescent journal and a durable store.  The HTTP
        front-end stays up afterwards for ``/stats`` and drained-state
        health checks.
        """
        with self._lock:
            if self._draining:
                return
            self._draining = True
            inflight = list(self._inflight.values())
        if self._replay_thread is not None:
            self._replay_thread.join()
        for future in inflight:
            try:
                future.result()
            except Exception:
                pass  # the submitter owns the failure
        if self._wal is not None and self._wal.is_open:
            self._wal.compact()
        if self.store is not None:
            fsync_dir(self.store.root)
        self._ha_stop.set()
        if self._heartbeat_thread is not None:
            self._heartbeat_thread.join()
        if self.lease is not None:
            self.lease.release(handoff=True)

    def _start_heartbeat(self) -> None:
        self._heartbeat_thread = threading.Thread(
            target=self._heartbeat_loop,
            name="macroserver-lease-heartbeat", daemon=True)
        self._heartbeat_thread.start()

    def _heartbeat_loop(self) -> None:
        interval = max(self.lease.ttl_s / 3.0, 0.05)
        while not self._ha_stop.wait(interval):
            with self._lock:
                if self._draining:
                    return
                if not self.lease.heartbeat():
                    # Split-brain guard: someone adopted the lease
                    # while we were presumed dead (wedged, paused).
                    # There is a new primary; stop admitting now.
                    self._draining = True
                    return

    def _watch_lease(self) -> None:
        """Standby loop: promote when the lease expires or releases."""
        while not self._ha_stop.wait(self.standby_poll_s):
            with self._lock:
                if self._draining or self.role != "standby":
                    return
            if self.lease.expired() and self.promote():
                return

    def _open_wal_and_replay(self) -> None:
        backlog = self._wal.open() if self._wal is not None else []
        if backlog:
            self._ready.clear()
            self._replay_thread = threading.Thread(
                target=self._replay, args=(backlog,),
                name="macroserver-wal-replay", daemon=True)
            self._replay_thread.start()
        else:
            self._ready.set()

    # -- lifecycle ----------------------------------------------------------

    def shutdown(self, drain: bool = True) -> None:
        """Stop the server.

        ``drain=True`` (the default) refuses new admissions, waits for
        every in-flight build, then stops the pool; ``drain=False``
        additionally cancels whatever has not started running.
        """
        with self._lock:
            self._draining = True
            inflight = list(self._inflight.values())
        self._ha_stop.set()
        if drain:
            if self._replay_thread is not None:
                self._replay_thread.join()
            for future in inflight:
                try:
                    future.result()
                except Exception:
                    pass  # the submitter owns the failure
            self._pool.shutdown(wait=True)
        else:
            self._pool.shutdown(wait=False, cancel_futures=True)
        for thread in (self._heartbeat_thread, self._watch_thread):
            if thread is not None:
                thread.join(timeout=5.0)
        if self._backend is not None:
            self._backend.shutdown()
        if self.lease is not None and drain:
            self.lease.release(handoff=True)
        if self._wal is not None:
            self._wal.close()

    def __enter__(self) -> "MacroServer":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown(drain=True)

    # -- observability ------------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def ready(self) -> bool:
        """False while a WAL replay backlog is still being rebuilt.

        A not-ready server still serves requests (warm store hits
        especially); readiness is load-balancer advice, not a gate.
        """
        return self._ready.is_set()

    def wait_ready(self, timeout: Optional[float] = None) -> bool:
        """Block until WAL replay has drained; True when ready."""
        return self._ready.wait(timeout)

    def stats(self) -> dict:
        """JSON-serializable server + store + stage-cache metrics."""
        with self._lock:
            data = {
                "uptime_s": round(time.monotonic() - self._started, 3),
                "role": self.role,
                "workers": self.workers,
                "queue_limit": self.queue_limit,
                "batch_limit": self.batch_limit,
                "draining": self._draining,
                "ready": self.ready,
                "inflight": len(self._inflight),
                "requests": self._requests,
                "builds": self._builds,
                "store_hits": self._store_hits,
                "coalesced": self._coalesced,
                "rejected": self._rejected,
                "failures": self._failures,
                "shed": self._shed,
                "promotions": self._promotions,
                "endpoints": dict(self._endpoints),
                "request_latency": latency_summary(
                    self._request_latencies),
                "build_latency": latency_summary(self._build_latencies),
                "stage_cache": self.stage_cache.stats(),
            }
            if self._wal is not None:
                data["wal"] = {
                    "replayed": self._wal_replayed,
                    "replay_failures": self._wal_replay_failures,
                    "pending": len(self._wal.pending()),
                }
        if self._backend is not None:
            data["backend"] = self._backend.stats_dict()
        if self.store is not None:
            data["store"] = self.store.stats.to_dict()
        if self.governor is not None:
            data["governor"] = self.governor.to_dict()
        if self.lease is not None:
            data["lease"] = self.lease.describe()
        return data

    # -- internals ----------------------------------------------------------

    def _run(self, key: str, config: RamConfig, march: MarchTest,
             signoff: Optional[str]) -> CompileResponse:
        t0 = time.monotonic()
        try:
            if self._backend is not None:
                artifacts, hit = self._backend_build(
                    key, config, march, signoff)
            else:
                artifacts, hit, _ = self._builder(
                    config, march, signoff=signoff, store=self.store,
                    stage_cache=self.stage_cache)
        except Exception:
            with self._lock:
                self._failures += 1
            raise
        elapsed = time.monotonic() - t0
        with self._lock:
            if hit:
                self._store_hits += 1
            else:
                self._builds += 1
            self._build_latencies.append(elapsed)
        return CompileResponse(
            key=key, cached=hit, elapsed_s=elapsed,
            artifacts=artifacts,
        )

    def _backend_build(self, key, config, march, signoff):
        """Build via the process backend; warm hits stay in-process.

        The store read is integrity-checked, so a torn or evicted
        entry falls through to the backend, which rebuilds it.
        """
        if self.store is not None:
            cached = self.store.get(key)
            if cached is not None:
                return cached, True
        result = self._backend.build(key, config, march,
                                     signoff=signoff)
        return result.artifacts, result.cached

    def _replay(self, backlog) -> None:
        """Re-execute requests a dead predecessor admitted but never
        finished.  Runs once, in the background, off the request pool
        (replay must not eat queue_limit slots); the server serves
        normally throughout.  Idempotent: content addressing turns
        already-published work into store hits."""
        for record in backlog:
            status = "failed"
            try:
                config = RamConfig.from_dict(record["config"])
                march = parse_march(record["march_name"],
                                    record["march_notation"])
                self._run(record["key"], config, march,
                          record.get("signoff"))
                status = "ok"
            except Exception:
                # A request that cannot replay (config rejected by a
                # newer validator, signoff now failing) is retired as
                # failed: replaying it forever would be a crash loop.
                with self._lock:
                    self._wal_replay_failures += 1
            if status == "ok":
                with self._lock:
                    self._wal_replayed += 1
            try:
                self._wal.done(record["id"], status)
            except Exception:
                pass  # bookkeeping only; never kill the replay loop
        self._ready.set()

    def _wal_done(self, request_id: str, future: Future) -> None:
        try:
            status = "ok" if future.exception() is None else "failed"
        except Exception:  # cancelled during a non-drain shutdown
            status = "failed"
        try:
            self._wal.done(request_id, status)
        except Exception:
            pass  # a full disk must not break the response path

    def _retire(self, key: str, future: Future) -> None:
        with self._lock:
            if self._inflight.get(key) is future:
                del self._inflight[key]
            self._admitted -= 1

    def _observe_request(self, future: Future, t_submit: float) -> None:
        """Record this caller's own admission-to-completion latency."""
        def record(_f: Future) -> None:
            latency = time.monotonic() - t_submit
            with self._lock:
                self._request_latencies.append(latency)

        future.add_done_callback(record)
