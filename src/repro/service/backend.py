"""The supervised process-pool build backend of the macro server.

The thread-pool server (PR 4) executes builds on threads, so every
concurrent compile fights the GIL and a worker that dies, hangs, or
corrupts an artifact mid-publish takes the process (or the truth) with
it.  This backend moves builds onto supervised *worker processes*,
reusing the supervision primitives proven by
:mod:`repro.runtime.supervision`:

* **Per-request deadlines** — a hung worker cannot be joined; past its
  deadline the pool is terminated and the request retried (innocent
  co-flighted builds are re-dispatched without blame or attempt cost).
* **Bounded-backoff retry** — transient failures re-fly up to
  ``RetryPolicy.max_attempts`` with exponential backoff; ``config``
  and ``signoff`` failures are deterministic and never retry.
* **Solo-reflight crash blame** — when a worker dies, every in-flight
  request is a suspect; suspects re-fly strictly alone so the next
  death identifies its killer, and a request that exceeds its crash
  budget is **quarantined** as a poison config
  (:class:`~repro.core.errors.BuildCrashed`, raised fast on every
  later attempt).
* **Store-mediated results** — workers *publish to the artifact
  store* and return only a status; the parent then serves the
  integrity-checked bytes from disk.  Megabytes never cross the pickle
  boundary, and a torn or corrupt publish is detected (and rebuilt)
  instead of served.
* **Cross-process single-flight** — per-digest claim files in the
  store (``O_EXCL``; stale claims from dead builders are broken and
  adopted) mean N servers sharing one store still build each bundle
  once.

Deterministic fault injection for all of the above is plumbed through
``chaos``: an object with ``spec_for(key, attempt) -> Optional[dict]``
(see :mod:`repro.service.chaos`) whose spec rides into the worker and
fires at named points.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.bist.march import IFA_9, MarchTest
from repro.core.config import RamConfig
from repro.core.errors import (
    BuildCrashed,
    ConfigError,
    ReproError,
    ServiceUnavailable,
    SignoffError,
)
from repro.runtime.supervision import (
    CrashBlame,
    RetryPolicy,
    classify_error,
    terminate_pool,
)
from repro.service.bundle import build_bundle
from repro.service.store import ArtifactStore

#: Requeues a request tolerates for pool deaths it did not cause
#: (someone else's timeout or crash) before giving up.  Generous: it
#: exists only to bound a pathological kill loop, not to police load.
MAX_INNOCENT_REQUEUES = 32


# ---------------------------------------------------------------------------
# the worker side (top level: pickled by name)
# ---------------------------------------------------------------------------

_STAGE_CACHE = None


def _worker_stage_cache():
    """One StageCache per worker process, reused across its builds."""
    global _STAGE_CACHE
    if _STAGE_CACHE is None:
        from repro.core.stages import StageCache

        _STAGE_CACHE = StageCache()
    return _STAGE_CACHE


def build_in_worker(
    store_root: str,
    byte_budget: Optional[int],
    config_dict: dict,
    march: MarchTest,
    signoff: Optional[str],
    key: str,
    attempt: int,
    chaos_spec: Optional[dict],
    claim_stale_s: float,
    claim_poll_s: float,
    wait_timeout_s: float,
) -> dict:
    """Build (or await) one bundle inside a worker process.

    Returns a small status payload — never artifact bytes; the parent
    reads those from the store with integrity checks.  Anticipated
    failures return (never raise) so typed details survive the pickle
    boundary, mirroring the campaign runner's worker contract.
    """
    try:
        if chaos_spec is not None:
            from repro.service.chaos import apply_chaos

            apply_chaos("spawn", chaos_spec, None, key)
        store = ArtifactStore(store_root, byte_budget=byte_budget)
        if store.contains(key) and store.verify(key):
            return {"status": "ok", "source": "store"}
        config = RamConfig.from_dict(config_dict)

        # Cross-process single-flight: one claim holder builds, the
        # rest wait for its publish (and adopt the claim if it dies).
        deadline = time.monotonic() + wait_timeout_s
        claimed = store.try_claim(key, stale_s=claim_stale_s)
        while not claimed:
            if store.contains(key) and store.verify(key):
                return {"status": "ok", "source": "waited"}
            if time.monotonic() > deadline:
                return {
                    "status": "failed", "taxonomy": "timeout",
                    "message": (
                        "timed out waiting for the claim holder "
                        f"of {key[:16]} to publish"),
                }
            time.sleep(claim_poll_s)
            claimed = store.try_claim(key, stale_s=claim_stale_s)
        try:
            # The claim may have been won only after the previous
            # holder published and released.
            if store.contains(key) and store.verify(key):
                return {"status": "ok", "source": "store"}
            if chaos_spec is not None:
                from repro.service.chaos import apply_chaos

                apply_chaos("pre_build", chaos_spec, store, key)
            bundle = build_bundle(config, march, signoff=signoff,
                                  stage_cache=_worker_stage_cache())
            if chaos_spec is not None:
                from repro.service.chaos import apply_chaos

                apply_chaos("pre_publish", chaos_spec, store, key)
                if apply_chaos("publish", chaos_spec, store, key,
                               bundle=bundle):
                    return {"status": "ok", "source": "built"}
            store.put(key, bundle)
            if chaos_spec is not None:
                from repro.service.chaos import apply_chaos

                apply_chaos("post_publish", chaos_spec, store, key)
            return {"status": "ok", "source": "built"}
        finally:
            store.release_claim(key)
    except SignoffError as error:
        return {
            "status": "failed", "taxonomy": "signoff",
            "message": str(error), "report": error.report,
            "failure_class": error.failure_class,
        }
    except Exception as error:
        return {
            "status": "failed", "taxonomy": classify_error(error),
            "message": f"{type(error).__name__}: {error}",
        }


# ---------------------------------------------------------------------------
# results and stats
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BuildResult:
    """What :meth:`ProcessPoolBackend.build` hands the server."""

    artifacts: Dict[str, bytes]
    cached: bool
    elapsed_s: float
    source: str  # "store" | "waited" | "built"
    attempts: int


@dataclass
class BackendStats:
    """JSON-serializable counters for one backend instance."""

    builds: int = 0
    store_hits: int = 0
    retries: int = 0
    crashes: int = 0
    timeouts: int = 0
    quarantined: int = 0
    innocent_requeues: int = 0
    post_build_misses: int = 0

    def to_dict(self) -> dict:
        return dict(self.__dict__)


# ---------------------------------------------------------------------------
# the backend
# ---------------------------------------------------------------------------


class ProcessPoolBackend:
    """Supervised multi-process build executor (see module docstring).

    Args:
        store: the shared :class:`ArtifactStore` — mandatory, because
            workers return results *through* it.
        workers: worker processes.
        deadline_s: per-attempt wall-clock budget for one build.
        retry: bounded-retry/backoff/quarantine policy (the
            :class:`~repro.runtime.supervision.RetryPolicy` shared
            with the campaign runner).
        chaos: optional deterministic fault injector — an object with
            ``spec_for(key, attempt) -> Optional[dict]``.
        claim_stale_s: age past which another process's claim file is
            presumed abandoned (its holder is also declared dead the
            moment its pid vanishes).  Defaults to ``2 * deadline_s``.
        poll_s: claim-wait poll interval inside workers.
    """

    def __init__(
        self,
        store: ArtifactStore,
        workers: int = 2,
        deadline_s: float = 300.0,
        retry: Optional[RetryPolicy] = None,
        chaos=None,
        claim_stale_s: Optional[float] = None,
        poll_s: float = 0.02,
    ) -> None:
        if store is None:
            raise ConfigError(
                "the process-pool backend needs an artifact store: "
                "workers publish results through it")
        if workers < 1:
            raise ConfigError("workers must be >= 1")
        if deadline_s <= 0:
            raise ConfigError("deadline_s must be positive")
        self.store = store
        self.workers = workers
        self.deadline_s = deadline_s
        self.retry = retry or RetryPolicy()
        self.chaos = chaos
        self.claim_stale_s = claim_stale_s if claim_stale_s is not None \
            else max(2.0 * deadline_s, 10.0)
        self.poll_s = poll_s
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._pool: Optional[ProcessPoolExecutor] = None
        self._generation = 0
        self._retired: Dict[int, str] = {}  # generation -> cause
        self._inflight: Dict[str, int] = {}  # key -> generation
        self._blame = CrashBlame(self.retry.crash_retries)
        self._solo_pending: set = set()
        self._active = 0
        self._solo_waiting = 0
        self._solo_active = False
        self._shutdown = False
        self.stats = BackendStats()

    # -- public API ---------------------------------------------------------

    def build(self, key: str, config: RamConfig,
              march: MarchTest = IFA_9,
              signoff: Optional[str] = None) -> BuildResult:
        """Execute one build under full supervision; thread-safe.

        Raises:
            BuildCrashed: the request was quarantined as a poison
                config (it kept killing workers).
            ConfigError / SignoffError: deterministic failures,
                reconstructed from the worker payload, never retried.
            ReproError: retries exhausted (taxonomy in the message).
            ServiceUnavailable: the backend is shut down.
        """
        t0 = time.monotonic()
        attempts = 0
        innocents = 0
        failure = ("unknown", "never dispatched")
        while True:
            self._check_dispatchable(key)
            solo = self._acquire_slot(key)
            try:
                attempts += 1
                outcome, payload = self._dispatch(key, config, march,
                                                  signoff, attempts)
            finally:
                self._release_slot(key, solo)
            if outcome == "crashed":
                # Blame was assigned under the lock by whichever
                # thread retired the pool; quarantine check happens at
                # the top of the loop.  A crash retry does not consume
                # a regular attempt: the crash budget bounds it.
                attempts -= 1
                continue
            if outcome == "innocent":
                attempts -= 1
                innocents += 1
                with self._lock:
                    self.stats.innocent_requeues += 1
                if innocents > MAX_INNOCENT_REQUEUES:
                    raise ReproError(
                        f"build of {key[:16]} was re-queued "
                        f"{innocents} times by other requests' pool "
                        f"failures; giving up")
                continue
            if outcome == "ok":
                artifacts = self.store.get(key)
                if artifacts is not None:
                    with self._lock:
                        if payload["source"] == "built":
                            self.stats.builds += 1
                        else:
                            self.stats.store_hits += 1
                    return BuildResult(
                        artifacts=artifacts,
                        cached=payload["source"] != "built",
                        elapsed_s=time.monotonic() - t0,
                        source=payload["source"],
                        attempts=attempts,
                    )
                # Published, then lost before we could read it back
                # (eviction race, torn disk): a retryable failure.
                with self._lock:
                    self.stats.post_build_misses += 1
                failure = ("store_miss",
                           "bundle vanished between publish and "
                           "read-back (evicted or torn)")
            elif outcome == "timeout":
                failure = ("timeout",
                           f"build exceeded its {self.deadline_s:g}s "
                           f"deadline (worker killed)")
            else:  # worker-reported failure payload
                failure = (payload["taxonomy"], payload["message"])
                if payload["taxonomy"] == "config":
                    raise ConfigError(payload["message"])
                if payload["taxonomy"] == "signoff":
                    raise SignoffError(
                        payload["message"],
                        report=payload.get("report"),
                        failure_class=payload.get("failure_class", ""))
            if attempts >= self.retry.max_attempts:
                raise ReproError(
                    f"build of {key[:16]} failed after {attempts} "
                    f"attempt(s) [{failure[0]}]: {failure[1]}")
            with self._lock:
                self.stats.retries += 1
            time.sleep(self.retry.backoff_s(attempts))

    def shutdown(self) -> None:
        """Stop the pool; subsequent builds raise ServiceUnavailable."""
        with self._lock:
            self._shutdown = True
            pool = self._pool
            self._pool = None
            self._cond.notify_all()
        terminate_pool(pool)

    def __enter__(self) -> "ProcessPoolBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    @property
    def quarantined_keys(self) -> frozenset:
        with self._lock:
            return self._blame.quarantined

    def worker_pids(self) -> tuple:
        """Pids of the current pool generation's worker processes.

        For the resource governor's RSS probe; empty between
        generations or before the first dispatch.
        """
        with self._lock:
            pool = self._pool
            processes = getattr(pool, "_processes", None) if pool \
                else None
            return tuple(processes.keys()) if processes else ()

    def stats_dict(self) -> dict:
        with self._lock:
            data = self.stats.to_dict()
            data["workers"] = self.workers
            data["quarantined"] = len(self._blame.quarantined)
            return data

    # -- dispatch -----------------------------------------------------------

    def _dispatch(self, key, config, march, signoff, attempt):
        """One attempt on the pool; returns (outcome, payload)."""
        chaos_spec = (self.chaos.spec_for(key, attempt)
                      if self.chaos is not None else None)
        with self._lock:
            if self._shutdown:
                raise ServiceUnavailable(
                    "build backend is shut down", reason="draining")
            if self._pool is None:
                self._generation += 1
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers)
            generation, pool = self._generation, self._pool
            self._inflight[key] = generation
        try:
            try:
                future = pool.submit(
                    build_in_worker,
                    os.fspath(self.store.root), self.store.byte_budget,
                    config.to_dict(), march, signoff, key, attempt,
                    chaos_spec, self.claim_stale_s, self.poll_s,
                    self.deadline_s,
                )
            except (BrokenExecutor, RuntimeError) as error:
                # The pool died before (or while) accepting the task.
                return self._on_break(key, generation,
                                      default_cause="crash"), None
            try:
                payload = future.result(timeout=self.deadline_s)
            except FutureTimeout:
                self._retire(generation, "timeout", overdue_key=key)
                with self._lock:
                    self.stats.timeouts += 1
                return "timeout", None
            except BrokenExecutor:
                return self._on_break(key, generation,
                                      default_cause="crash"), None
            if payload["status"] == "ok":
                return "ok", payload
            return "failed", payload
        finally:
            with self._lock:
                if self._inflight.get(key) == generation:
                    del self._inflight[key]

    def _on_break(self, key: str, generation: int,
                  default_cause: str) -> str:
        """Classify a BrokenExecutor: my crash, or collateral damage?"""
        cause = self._retire(generation, default_cause)
        if cause == "crash":
            with self._lock:
                if self._blame.is_quarantined(key):
                    return "crashed"  # loop re-checks and raises
                if key in self._solo_pending or \
                        self._blame.crashes(key) > 0:
                    return "crashed"
            return "innocent"
        # Someone else's deadline killed the pool under us.
        return "innocent"

    def _retire(self, generation: int, cause: str,
                overdue_key: Optional[str] = None) -> str:
        """Tear down one pool generation exactly once; returns the
        recorded cause (first claimant wins)."""
        with self._lock:
            recorded = self._retired.get(generation)
            if recorded is not None:
                return recorded
            self._retired[generation] = cause
            pool = None
            if self._generation == generation:
                pool = self._pool
                self._pool = None
            if cause == "crash":
                suspects = [k for k, g in self._inflight.items()
                            if g == generation]
                quarantined, resuspects = self._blame.accuse(suspects)
                self._solo_pending.update(resuspects)
                self._solo_pending.difference_update(quarantined)
                self.stats.crashes += 1
                self.stats.quarantined += len(quarantined)
        terminate_pool(pool)
        return cause

    # -- quarantine + solo gate ---------------------------------------------

    def _check_dispatchable(self, key: str) -> None:
        with self._lock:
            if self._shutdown:
                raise ServiceUnavailable(
                    "build backend is shut down", reason="draining")
            if self._blame.is_quarantined(key):
                raise BuildCrashed(
                    f"request {key[:16]} killed "
                    f"{self._blame.crashes(key)} worker(s) and is "
                    f"quarantined as a poison config",
                    key=key, crashes=self._blame.crashes(key))

    def _acquire_slot(self, key: str) -> bool:
        """Admit one dispatch; crash suspects fly strictly alone."""
        with self._cond:
            solo = key in self._solo_pending
            if solo:
                self._solo_waiting += 1
                while self._active > 0 or self._solo_active:
                    self._cond.wait()
                self._solo_waiting -= 1
                self._solo_active = True
            else:
                while self._solo_active or self._solo_waiting > 0:
                    self._cond.wait()
            self._active += 1
            return solo

    def _release_slot(self, key: str, solo: bool) -> None:
        with self._cond:
            self._active -= 1
            if solo:
                self._solo_active = False
                # The solo flight is over; whatever happened, the key
                # either survived (innocent), got re-accused (back in
                # solo_pending via _retire), or was quarantined.
                self._solo_pending.discard(key)
            self._cond.notify_all()
