"""Deterministic chaos-injection harness for the service tier.

Crash-safety claims are worthless untested, and real faults are rare
and unreproducible.  This module makes them cheap and deterministic:

* **Injection specs** (:class:`ChaosSpec` / :class:`ChaosPlan`) ride
  into build workers as plain dicts and fire at named points of the
  worker lifecycle (``spawn``, ``pre_build``, ``pre_publish``,
  ``publish``, ``post_publish``).  Actions: SIGKILL the worker, hang
  past its deadline, raise ``ENOSPC``, publish a *torn* entry, or
  corrupt the published bytes in place.  A plan injects a fixed number
  of times per key and then stands down, so every scenario ends in
  recovery — the point is proving the system heals, not that it
  breaks.
* **Scenarios** (:data:`SCENARIOS`, ``repro chaos`` on the CLI) each
  stage one fault against a real store/backend/server in a scratch
  directory and assert the recovery invariants the docs promise:

  - no admitted request is ever lost,
  - no corrupt artifact bytes are ever returned to a caller,
  - the artifacts served after recovery are byte-identical to a
    clean, fault-free build,
  - a killed server replays its WAL to completion on restart.

The harness intentionally reaches into :class:`ArtifactStore` layout
internals (``_entry_dir``) — simulating torn disks requires writing
the torn bytes somewhere real.
"""

from __future__ import annotations

import errno
import json
import os
import signal
import socket
import threading
import time
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.bist.march import IFA_9
from repro.core.config import RamConfig
from repro.core.errors import ConfigError, ServiceUnavailable
from repro.service.backend import ProcessPoolBackend
from repro.service.bundle import build_bundle, bundle_key
from repro.service.store import MANIFEST, STORE_VERSION, ArtifactStore, _sha256

#: Injection points a worker passes through, in lifecycle order.
POINTS = ("spawn", "pre_build", "pre_publish", "publish", "post_publish")

#: Supported fault actions.
ACTIONS = ("kill", "hang", "enospc", "torn_publish", "corrupt")


# ---------------------------------------------------------------------------
# injection: specs, plans, and the worker-side hook
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ChaosSpec:
    """One fault: ``action`` fired when the worker reaches ``point``."""

    action: str
    point: str
    hang_s: float = 3600.0

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ConfigError(f"unknown chaos action {self.action!r}")
        if self.point not in POINTS:
            raise ConfigError(f"unknown chaos point {self.point!r}")

    def to_dict(self) -> dict:
        return {"action": self.action, "point": self.point,
                "hang_s": self.hang_s}


class ChaosPlan:
    """Deterministic injector handed to :class:`ProcessPoolBackend`.

    Injects ``spec`` into the first ``fail_times`` dispatches of each
    (matching) key, then stands down so the retry/recovery machinery
    can be observed healing.  Counts dispatches itself rather than
    trusting the caller's attempt number: crash retries deliberately
    do not consume attempts, but they must consume injections or a
    kill spec would quarantine every key it touches.
    """

    def __init__(self, spec: ChaosSpec, fail_times: int = 1,
                 keys: Optional[frozenset] = None) -> None:
        if fail_times < 0:
            raise ConfigError("fail_times must be >= 0")
        self.spec = spec
        self.fail_times = fail_times
        self.keys = keys
        self._dispatches: Counter = Counter()
        self._lock = threading.Lock()

    def spec_for(self, key: str, attempt: int) -> Optional[dict]:
        if self.keys is not None and key not in self.keys:
            return None
        with self._lock:
            self._dispatches[key] += 1
            if self._dispatches[key] > self.fail_times:
                return None
        return self.spec.to_dict()


def apply_chaos(point: str, spec: Mapping, store: Optional[ArtifactStore],
                key: str, bundle: Optional[Dict[str, bytes]] = None) -> bool:
    """Fire ``spec`` if the worker has reached its point.

    Called from :func:`repro.service.backend.build_in_worker` at each
    lifecycle point.  Returns True only when the fault *replaced* the
    publish itself (``torn_publish``), telling the worker to skip its
    own ``store.put``.
    """
    if spec.get("point") != point:
        return False
    action = spec.get("action")
    if action == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    if action == "hang":
        time.sleep(float(spec.get("hang_s", 3600.0)))
        return False
    if action == "enospc":
        raise OSError(errno.ENOSPC,
                      "No space left on device (chaos injection)")
    if action == "torn_publish":
        _publish_torn(store, key, bundle)
        return True
    if action == "corrupt":
        _corrupt_entry(store, key)
        return False
    raise ConfigError(f"unknown chaos action {action!r}")


def _publish_torn(store: ArtifactStore, key: str,
                  bundle: Dict[str, bytes]) -> None:
    """Publish what a crash mid-publish would leave on a filesystem
    without atomic rename: a manifest promising full artifacts over a
    truncated payload."""
    entry = store._entry_dir(key)
    entry.mkdir(parents=True, exist_ok=True)
    manifest = {"version": STORE_VERSION, "key": key, "artifacts": {}}
    for index, (name, data) in enumerate(sorted(bundle.items())):
        manifest["artifacts"][name] = {
            "sha256": _sha256(data), "bytes": len(data)}
        if index == 0:
            data = data[: max(1, len(data) // 2)]  # the torn artifact
        (entry / name).write_bytes(data)
    (entry / MANIFEST).write_text(
        json.dumps(manifest, sort_keys=True), encoding="utf-8")


def _corrupt_entry(store: ArtifactStore, key: str) -> None:
    """Flip bits in one published artifact, bypassing the store API."""
    entry = store._entry_dir(key)
    for path in sorted(entry.iterdir()):
        if path.name == MANIFEST:
            continue
        data = path.read_bytes()
        path.write_bytes(bytes(b ^ 0xFF for b in data[:64]) + data[64:])
        return


# ---------------------------------------------------------------------------
# scenario harness
# ---------------------------------------------------------------------------


#: One small, fast configuration shared by every scenario.
_CONFIG = RamConfig(words=64, bpw=8, bpc=4, strap_every=8)

_REFERENCE: Optional[Dict[str, bytes]] = None


def _reference_bundle() -> Dict[str, bytes]:
    """A clean, fault-free build of the scenario config (memoised —
    the byte-identity oracle every scenario compares against)."""
    global _REFERENCE
    if _REFERENCE is None:
        _REFERENCE = build_bundle(_CONFIG, IFA_9)
    return _REFERENCE


class _Checks:
    """Collects named pass/fail assertions for one scenario."""

    def __init__(self) -> None:
        self.items: List[Tuple[str, bool, str]] = []

    def check(self, name: str, ok: bool, detail: str = "") -> bool:
        self.items.append((name, bool(ok), detail))
        return bool(ok)

    __call__ = check


@dataclass(frozen=True)
class ScenarioReport:
    """Outcome of one chaos scenario."""

    name: str
    passed: bool
    elapsed_s: float
    checks: Tuple[Tuple[str, bool, str], ...]

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "passed": self.passed,
            "elapsed_s": round(self.elapsed_s, 3),
            "checks": [
                {"check": name, "passed": ok,
                 **({"detail": detail} if detail else {})}
                for name, ok, detail in self.checks
            ],
        }

    def summary(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        lines = [f"[{verdict}] {self.name} ({self.elapsed_s:.1f}s)"]
        for name, ok, detail in self.checks:
            mark = "ok" if ok else "FAILED"
            suffix = f" — {detail}" if detail and not ok else ""
            lines.append(f"    {mark:>6}  {name}{suffix}")
        return "\n".join(lines)


def _fresh_backend(workdir: Path, plan: ChaosPlan,
                   deadline_s: float = 120.0) -> ProcessPoolBackend:
    store = ArtifactStore(workdir / "store")
    return ProcessPoolBackend(store, workers=2, deadline_s=deadline_s,
                              chaos=plan, poll_s=0.01)


def _assert_recovered(check: _Checks, backend: ProcessPoolBackend,
                      key: str, result) -> None:
    """The invariants every single-fault build scenario must satisfy."""
    reference = _reference_bundle()
    check("request survived the fault (not lost)", result is not None)
    if result is None:
        return
    check("artifacts byte-identical to a clean build",
          result.artifacts == reference,
          "served bytes differ from a fault-free build")
    check("published entry verifies on disk",
          backend.store.verify(key))
    check("recovery took more than one attempt or a crash retry",
          result.attempts > 1 or backend.stats.crashes > 0
          or backend.stats.timeouts > 0)


def _scenario_worker_kill(workdir: Path, check: _Checks) -> None:
    """SIGKILL the worker after it built but before it published."""
    plan = ChaosPlan(ChaosSpec("kill", "pre_publish"))
    key = bundle_key(_CONFIG, IFA_9)
    with _fresh_backend(workdir, plan) as backend:
        result = backend.build(key, _CONFIG, IFA_9)
        check("worker death was observed and blamed",
              backend.stats.crashes >= 1)
        check("key was not quarantined for a single crash",
              key not in backend.quarantined_keys)
        _assert_recovered(check, backend, key, result)


def _scenario_worker_hang(workdir: Path, check: _Checks) -> None:
    """Hang the worker past its deadline; supervision must kill it."""
    plan = ChaosPlan(ChaosSpec("hang", "pre_build", hang_s=600.0))
    key = bundle_key(_CONFIG, IFA_9)
    with _fresh_backend(workdir, plan, deadline_s=3.0) as backend:
        result = backend.build(key, _CONFIG, IFA_9)
        check("deadline fired on the hung worker",
              backend.stats.timeouts >= 1)
        _assert_recovered(check, backend, key, result)


def _scenario_torn_publish(workdir: Path, check: _Checks) -> None:
    """Worker publishes a torn entry (manifest promises more bytes
    than exist) and reports success; the read-back must catch it."""
    plan = ChaosPlan(ChaosSpec("torn_publish", "publish"))
    key = bundle_key(_CONFIG, IFA_9)
    with _fresh_backend(workdir, plan) as backend:
        result = backend.build(key, _CONFIG, IFA_9)
        check("torn entry was detected, never served",
              backend.store.stats.corrupt >= 1)
        check("read-back miss forced a rebuild",
              backend.stats.post_build_misses >= 1)
        _assert_recovered(check, backend, key, result)


def _scenario_corrupt_artifact(workdir: Path, check: _Checks) -> None:
    """Bit-rot the published bytes right after a clean publish."""
    plan = ChaosPlan(ChaosSpec("corrupt", "post_publish"))
    key = bundle_key(_CONFIG, IFA_9)
    with _fresh_backend(workdir, plan) as backend:
        result = backend.build(key, _CONFIG, IFA_9)
        check("corruption was detected, never served",
              backend.store.stats.corrupt >= 1)
        _assert_recovered(check, backend, key, result)


def _scenario_enospc(workdir: Path, check: _Checks) -> None:
    """The disk fills at publish time; the build must retry through."""
    plan = ChaosPlan(ChaosSpec("enospc", "pre_publish"))
    key = bundle_key(_CONFIG, IFA_9)
    with _fresh_backend(workdir, plan) as backend:
        result = backend.build(key, _CONFIG, IFA_9)
        check("ENOSPC failure was retried",
              backend.stats.retries >= 1)
        _assert_recovered(check, backend, key, result)


def _scenario_eviction_race(workdir: Path, check: _Checks) -> None:
    """Readers racing publish/evict churn from another store instance
    (simulating another process) must only ever see a clean hit with
    correct bytes or a clean miss — never garbage."""
    reference = _reference_bundle()
    size = sum(len(data) for data in reference.values())
    key = bundle_key(_CONFIG, IFA_9)
    other_key = "f" * len(key)
    other = {"macro.cif": b"x" * size}  # same footprint, different key
    # Two instances on one root = two locks = real interleaving, the
    # way two server processes sharing a store volume interleave.
    reader_store = ArtifactStore(workdir / "store")
    writer_store = ArtifactStore(workdir / "store",
                                 byte_budget=int(size * 1.5))
    writer_store.put(key, reference)
    mismatches: List[str] = []
    reads = hits = 0
    stop = threading.Event()

    def hammer() -> None:
        nonlocal reads, hits
        while not stop.is_set():
            got = reader_store.get(key)
            reads += 1
            if got is not None:
                hits += 1
                if got != reference:
                    mismatches.append("wrong bytes served")

    thread = threading.Thread(target=hammer, daemon=True)
    thread.start()
    try:
        # Budget fits ~1.5 bundles: every publish of `other` evicts
        # whichever bundle is LRU; re-publishing `key` churns it back.
        for _ in range(20):
            writer_store.put(other_key, other)
            writer_store.delete(other_key)
            writer_store.put(key, reference)
    finally:
        stop.set()
        thread.join(timeout=30.0)
    check("reader observed the churn", reads > 0)
    check("every hit served byte-identical artifacts",
          not mismatches, f"{len(mismatches)} corrupt read(s)")
    writer_store.put(key, reference)
    final = reader_store.get(key)
    check("bundle is cleanly readable after the churn",
          final == reference)


def _scenario_wal_replay(workdir: Path, check: _Checks) -> None:
    """A server killed after admitting (but before finishing) a
    request must replay it from the WAL on restart."""
    from repro.service.server import MacroServer
    from repro.service.wal import RequestLog

    store = ArtifactStore(workdir / "store")
    key = bundle_key(_CONFIG, IFA_9)
    wal_path = workdir / "requests.wal"
    # The "killed" server: admit was journaled, done never happened.
    dead = RequestLog(wal_path)
    dead.open()
    dead.admit(key=key, config=_CONFIG.to_dict(),
               march_name=IFA_9.name, march_notation=str(IFA_9),
               signoff=None)
    dead.close()
    # The restart: a fresh server over the same store and WAL.
    server = MacroServer(store=store, wal=RequestLog(wal_path))
    try:
        check("server became ready after replay",
              server.wait_ready(timeout=300.0))
        check("replay reported the orphaned request",
              server.stats()["wal"]["replayed"] == 1)
        check("orphaned request was rebuilt and published",
              store.contains(key) and store.verify(key))
        check("replayed artifacts byte-identical to a clean build",
              store.get(key) == _reference_bundle())
    finally:
        server.shutdown()
    survivor = RequestLog(wal_path)
    check("wal drained after replay", survivor.open() == [])
    survivor.close()


def _scenario_lease_steal(workdir: Path, check: _Checks) -> None:
    """A live holder's lease must resist theft; a dead-and-recycled
    holder's lease must be adopted immediately (no TTL wait)."""
    from repro.core.liveness import process_start_time
    from repro.service.ha import Lease

    path = workdir / "primary.lease"
    # A live foreign holder: pid 1 (always alive), heartbeating now.
    foreign = {"pid": 1, "host": socket.gethostname(),
               "start": process_start_time(1),
               "time": time.time(), "epoch": 3, "state": "active"}
    path.write_text(json.dumps(foreign), encoding="utf-8")
    thief = Lease(path, ttl_s=60.0)
    check("a fresh lease held by a live process resists theft",
          not thief.acquire())
    check("the holder's record survived the theft attempt",
          (thief.read() or {}).get("pid") == 1)
    # Same pid number, *different* start time: the owner died and the
    # kernel recycled its pid.  Using our own (live) pid with a wrong
    # start simulates that deterministically — the lease must read as
    # expired with its TTL nowhere near spent.
    recycled = dict(foreign)
    recycled["pid"] = os.getpid()
    recycled["start"] = (process_start_time(os.getpid()) or 0) + 9999
    recycled["time"] = time.time()
    path.write_text(json.dumps(recycled), encoding="utf-8")
    check("a recycled-pid record reads as expired before its TTL",
          thief.expired())
    check("the orphaned lease was adopted", thief.acquire())
    record = thief.read() or {}
    check("adoption advanced the epoch", record.get("epoch") == 4)
    check("the adopter now owns the lease", thief.owned())
    thief.release(handoff=True)
    check("handoff release is visible to the next watcher",
          (thief.read() or {}).get("state") == "released")


def _scenario_drain_hang(workdir: Path, check: _Checks) -> None:
    """Drain with a build wedged in flight: the lease must stay held
    (no premature handoff) until the build completes, then release."""
    from repro.service.ha import Lease
    from repro.service.server import MacroServer
    from repro.service.wal import RequestLog

    reference = _reference_bundle()
    gate = threading.Event()

    def gated_builder(config, march, signoff=None, store=None,
                      stage_cache=None):
        gate.wait(60.0)
        return (dict(reference), False,
                bundle_key(config, march, signoff))

    lease = Lease(workdir / "primary.lease", ttl_s=60.0)
    server = MacroServer(store=ArtifactStore(workdir / "store"),
                         workers=2, builder=gated_builder,
                         wal=RequestLog(workdir / "requests.wal"),
                         lease=lease)
    try:
        future = server.submit(_CONFIG, IFA_9)
        drainer = threading.Thread(target=server.drain, daemon=True)
        drainer.start()
        deadline = time.monotonic() + 10.0
        while not server.draining and time.monotonic() < deadline:
            time.sleep(0.01)
        check("drain stopped admissions immediately",
              server.draining)
        try:
            server.submit(_CONFIG, IFA_9)
            check("draining server refused new work", False)
        except ServiceUnavailable as error:
            check("draining server refused new work",
                  error.reason == "draining")
        check("drain waits for the wedged build (lease still active)",
              drainer.is_alive()
              and (lease.read() or {}).get("state") == "active")
        gate.set()
        drainer.join(timeout=60.0)
        check("drain completed once the build finished",
              not drainer.is_alive())
        check("the in-flight build was finished, not abandoned",
              future.result(timeout=10.0).artifacts == reference)
        check("lease handed off only after the drain",
              (lease.read() or {}).get("state") == "released")
        successor = Lease(workdir / "primary.lease", ttl_s=60.0)
        check("a successor can adopt the released lease",
              successor.acquire())
        deadline = time.monotonic() + 5.0
        while server._wal.pending() and time.monotonic() < deadline:
            time.sleep(0.02)
        check("wal holds no pending admits after the drain",
              server._wal.pending() == [])
    finally:
        server.shutdown()


def _scenario_disk_pressure(workdir: Path, check: _Checks) -> None:
    """Walk free disk down a scripted pressure curve: the server must
    shed (503 + Retry-After), then degrade to read-only store hits,
    then recover — and never die with ENOSPC."""
    from repro.service.governor import ResourceGovernor
    from repro.service.server import MacroServer

    gib = 1024 ** 3
    levels = {"free": 10 * gib}
    governor = ResourceGovernor(
        workdir / "store", disk_reserve_bytes=gib,
        sample_interval_s=0.0, retry_after_s=2.5,
        disk_probe=lambda: levels["free"])
    server = MacroServer(store=ArtifactStore(workdir / "store"),
                         workers=2, governor=governor)
    try:
        warm = server.compile(_CONFIG, IFA_9)
        check("plenty of disk: the build ran clean",
              warm.artifacts == _reference_bundle())
        levels["free"] = 512 * 1024 ** 2  # below reserve, above floor
        try:
            server.submit(_CONFIG, IFA_9)
            check("pressure shed the request with 503 advice", False)
        except ServiceUnavailable as error:
            check("pressure shed the request with 503 advice",
                  error.reason == "resource_pressure"
                  and error.retry_after_s > 0)
        levels["free"] = 100 * 1024 ** 2  # below the floor
        hit = server.compile(_CONFIG, IFA_9)
        check("read-only mode still serves warm store hits",
              hit.cached and hit.artifacts == _reference_bundle())
        cold = RamConfig(words=128, bpw=8, bpc=4, strap_every=8)
        try:
            server.submit(cold, IFA_9)
            check("read-only mode refused the cold build", False)
        except ServiceUnavailable as error:
            check("read-only mode refused the cold build",
                  error.reason == "resource_pressure")
        levels["free"] = 10 * gib
        again = server.compile(cold, IFA_9)
        check("admissions resumed when space freed (no ENOSPC death)",
              not again.cached and bool(again.artifacts))
        stats = server.stats()
        check("stats exposed the shed count and governor state",
              stats["shed"] >= 2
              and stats["governor"]["state"] == "admitting"
              and stats["governor"]["transitions"] >= 3)
    finally:
        server.shutdown()


def _scenario_batch_worker_kill(workdir: Path, check: _Checks) -> None:
    """A worker SIGKILLed mid-batch must cost only a retry of its own
    item: every item in the batch completes, bytes stay identical,
    and the WAL drains to empty."""
    from repro.service.server import MacroServer
    from repro.service.wal import RequestLog

    store = ArtifactStore(workdir / "store")
    victim_key = bundle_key(_CONFIG, IFA_9)
    plan = ChaosPlan(ChaosSpec("kill", "pre_publish"),
                     keys=frozenset({victim_key}))
    backend = ProcessPoolBackend(store, workers=2, deadline_s=120.0,
                                 chaos=plan, poll_s=0.01)
    configs = [RamConfig(words=words, bpw=8, bpc=4, strap_every=strap)
               for words in (64, 128) for strap in (8, 16)]
    assert bundle_key(configs[0], IFA_9) == victim_key
    server = MacroServer(store=store, workers=4, backend=backend,
                         wal=RequestLog(workdir / "requests.wal"))
    try:
        outcomes = server.submit_batch(
            [(config, IFA_9, None) for config in configs])
        check("every batch item was admitted",
              all(tag == "future" for tag, _ in outcomes))
        responses = []
        for tag, value in outcomes:
            responses.append(value.result(timeout=300.0)
                             if tag == "future" else None)
        check("every item completed despite the worker kill",
              all(response is not None for response in responses))
        check("the victim's worker death was observed",
              backend.stats.crashes >= 1)
        check("victim artifacts byte-identical to a clean build",
              responses[0].artifacts == _reference_bundle())
        check("every published entry verifies on disk",
              all(store.verify(response.key)
                  for response in responses))
        deadline = time.monotonic() + 5.0
        while server._wal.pending() and time.monotonic() < deadline:
            time.sleep(0.02)
        check("wal drained: no batch admit was lost or duplicated",
              server._wal.pending() == [])
    finally:
        server.shutdown()


def _scenario_failover(workdir: Path, check: _Checks) -> None:
    """The acceptance scenario: a real primary + warm standby as
    subprocesses, a 16-config batch in flight, ``kill -9`` on the
    primary.  The standby must promote, the resubmitted batch must
    complete with zero lost requests, and the served bytes must be
    identical to a clean single-node compile."""
    import re
    import subprocess
    import sys

    import repro
    from repro.core.stages import StageCache
    from repro.service.http import ServiceClient

    src = Path(repro.__file__).resolve().parents[1]
    env = dict(os.environ)
    env["PYTHONPATH"] = (os.fspath(src) + os.pathsep
                         + env.get("PYTHONPATH", ""))
    store_dir = workdir / "store"
    wal_path = workdir / "requests.wal"
    lease_path = workdir / "primary.lease"
    port_re = re.compile(r"http://[^:]+:(\d+)")

    def launch(extra):
        return subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--cache-dir", os.fspath(store_dir),
             "--wal", os.fspath(wal_path),
             "--workers", "2", "--batch-limit", "32", *extra],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env, cwd=os.fspath(workdir))

    def read_port(process):
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            line = process.stdout.readline()
            if not line:
                return None  # the server died before binding
            match = port_re.search(line)
            if match:
                return int(match.group(1))
        return None

    primary = launch(["--lease", os.fspath(lease_path),
                      "--lease-ttl-s", "2"])
    standby = None
    try:
        primary_port = read_port(primary)
        if not check("primary came up", primary_port is not None):
            return
        standby = launch(["--standby-of", os.fspath(lease_path),
                          "--lease-ttl-s", "2"])
        standby_port = read_port(standby)
        if not check("standby came up", standby_port is not None):
            return
        standby_client = ServiceClient(port=standby_port, retries=2,
                                       timeout_s=120.0)
        check("standby identifies itself before the failover",
              standby_client.healthz().get("role") == "standby")
        configs = [RamConfig(words=words, bpw=8, bpc=4, spares=spares,
                             gate_size=gate, strap_every=strap)
                   for words in (64, 128) for spares in (4, 8)
                   for gate in (1, 2) for strap in (8, 16)]
        client = ServiceClient(port=primary_port, retries=10,
                               timeout_s=300.0, backoff_cap_s=2.0,
                               failover=[("127.0.0.1", standby_port)])
        received = 0
        interrupted = False
        try:
            for record in client.compile_batch(configs):
                received += 1
                if received == 1:
                    primary.kill()  # SIGKILL, mid-batch
        except ServiceUnavailable as error:
            interrupted = error.reason == "interrupted"
        check("kill -9 tore the stream mid-batch",
              interrupted and received < len(configs))
        promoted = False
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            try:
                if standby_client.healthz().get("role") == "primary":
                    promoted = True
                    break
            except Exception:
                pass
            time.sleep(0.2)
        if not check("standby promoted itself", promoted):
            return
        # Same client, same batch: the failover list routes it to the
        # promoted standby; journaled admits make the resubmission
        # idempotent.
        results = {}
        for record in client.compile_batch(configs):
            results[record["index"]] = record
        check("resubmitted batch completed every item",
              len(results) == len(configs)
              and all(r["status"] == "ok" for r in results.values()))
        if len(results) != len(configs):
            return
        # Byte-identity against a clean, single-process compile.
        stage_cache = StageCache()
        for index in (0, len(configs) - 1):
            local = build_bundle(configs[index], IFA_9,
                                 stage_cache=stage_cache)
            remote = standby_client.fetch_artifact(
                results[index]["key"], "macro.cif")
            check(f"item {index} byte-identical to a clean build",
                  remote == local["macro.cif"])
        audit = ArtifactStore(store_dir)
        check("every served key verifies on disk (no corrupt reads)",
              all(audit.verify(r["key"]) for r in results.values()))
        pending = None
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            pending = standby_client.stats().get("wal", {}).get(
                "pending")
            if pending == 0:
                break
            time.sleep(0.5)
        check("no WAL entry was lost or left pending", pending == 0)
    finally:
        for process in (primary, standby):
            if process is None:
                continue
            if process.poll() is None:
                process.kill()
            try:
                process.communicate(timeout=30.0)
            except subprocess.TimeoutExpired:
                pass


SCENARIOS: Dict[str, Callable[[Path, _Checks], None]] = {
    "worker_kill": _scenario_worker_kill,
    "worker_hang": _scenario_worker_hang,
    "torn_publish": _scenario_torn_publish,
    "corrupt_artifact": _scenario_corrupt_artifact,
    "enospc": _scenario_enospc,
    "eviction_race": _scenario_eviction_race,
    "wal_replay": _scenario_wal_replay,
    "lease_steal": _scenario_lease_steal,
    "drain_hang": _scenario_drain_hang,
    "disk_pressure": _scenario_disk_pressure,
    "batch_worker_kill": _scenario_batch_worker_kill,
    "failover": _scenario_failover,
}


def run_scenario(name: str, workdir) -> ScenarioReport:
    """Run one scenario in ``workdir/<name>``; never raises."""
    runner = SCENARIOS.get(name)
    if runner is None:
        raise ConfigError(
            f"unknown chaos scenario {name!r}; "
            f"known: {', '.join(sorted(SCENARIOS))}")
    checks = _Checks()
    scratch = Path(workdir) / name
    scratch.mkdir(parents=True, exist_ok=True)
    t0 = time.monotonic()
    try:
        runner(scratch, checks)
    except Exception as error:  # a scenario crash is a failure, not an abort
        checks.check("scenario completed without raising", False,
                     f"{type(error).__name__}: {error}")
    return ScenarioReport(
        name=name,
        passed=all(ok for _, ok, _ in checks.items),
        elapsed_s=time.monotonic() - t0,
        checks=tuple(checks.items),
    )


def run_scenarios(names, workdir) -> List[ScenarioReport]:
    """Run scenarios in order; ``["all"]`` means every one of them."""
    if list(names) == ["all"]:
        names = list(SCENARIOS)
    return [run_scenario(name, workdir) for name in names]
