"""Bundle building: a compiled macro as named, storable artifacts.

The unit the service layer traffics in is the *bundle* — a mapping of
artifact name to bytes covering everything a client needs from one
compilation:

====================  ====================================================
``macro.cif``         full CIF layout export
``trpla_and.plane``   TRPLA AND-plane control code
``trpla_or.plane``    TRPLA OR-plane control code
``datasheet.json``    structured timing/area/power guarantees
``datasheet.txt``     the human-readable datasheet summary
``area.json``         Table I area accounting (+ derived overheads)
``flow.txt``          the Fig. 1 flow report for this build
``signoff.json``      structured signoff report (only when a policy ran)
====================  ====================================================

:func:`bundle_key` is the content address: a canonical digest over the
configuration, the march test, the process rule-deck digest, and the
signoff policy — exactly the inputs that determine the bytes above.
:func:`compile_cached` is the one code path the CLI, the macro server,
and the campaign drivers all share: consult the store, build on miss,
publish, return.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, Optional, Tuple

from repro.bist.march import IFA_9, MarchTest
from repro.core.canonical import stable_digest
from repro.core.compiler import BISRAMGen, CompiledRam, march_digest
from repro.core.config import RamConfig
from repro.core.stages import StageCache
from repro.service.store import ArtifactStore
from repro.tech.process import get_process

BUNDLE_VERSION = 2

#: Artifact names every successful bundle carries.
CORE_ARTIFACTS = (
    "macro.cif", "trpla_and.plane", "trpla_or.plane",
    "datasheet.json", "datasheet.txt", "area.json", "flow.txt",
)


def bundle_key(config: RamConfig, march: MarchTest = IFA_9,
               signoff: Optional[str] = None) -> str:
    """Content address of one compilation's artifact bundle.

    Folds in everything that determines the output bytes: the full
    canonical configuration, the march test's name *and* notation, the
    resolved deck fingerprint (so editing *any* part of a registry deck
    file — rules, layers, devices, supply — invalidates cached layouts
    built under the old deck), the signoff policy, and a format version
    (bump it when artifact rendering changes).
    """
    return stable_digest({
        "bundle_version": BUNDLE_VERSION,
        "config": config.to_dict(),
        "march": march_digest(march),
        "deck_fingerprint": get_process(config.process).fingerprint(),
        "signoff": signoff or "",
    })


def _datasheet_dict(compiled: CompiledRam) -> dict:
    data = dataclasses.asdict(compiled.datasheet)
    data["config"] = compiled.config.to_dict()
    return data


def _area_dict(compiled: CompiledRam) -> dict:
    report = compiled.area_report
    data = dataclasses.asdict(report)
    data["overhead_percent"] = report.overhead_percent
    data["bist_bisr_only_percent"] = report.bist_bisr_only_percent
    return data


def render_bundle(compiled: CompiledRam) -> Dict[str, bytes]:
    """Serialise one compiled macro into its artifact bundle."""
    and_text, or_text = compiled.control_plane_texts()
    artifacts = {
        "macro.cif": compiled.cif_text().encode("utf-8"),
        "trpla_and.plane": and_text.encode("utf-8"),
        "trpla_or.plane": or_text.encode("utf-8"),
        "datasheet.json": _json_bytes(_datasheet_dict(compiled)),
        "datasheet.txt":
            (compiled.datasheet.summary() + "\n").encode("utf-8"),
        "area.json": _json_bytes(_area_dict(compiled)),
        "flow.txt": (compiled.flow_report(stage_line=False) + "\n"
                     ).encode("utf-8"),
    }
    if compiled.signoff is not None:
        artifacts["signoff.json"] = _json_bytes(
            compiled.signoff.to_dict())
    return artifacts


def _json_bytes(obj) -> bytes:
    return (json.dumps(obj, sort_keys=True, indent=1) + "\n"
            ).encode("utf-8")


def build_bundle(config: RamConfig, march: MarchTest = IFA_9,
                 signoff: Optional[str] = None,
                 stage_cache: Optional[StageCache] = None,
                 ) -> Dict[str, bytes]:
    """Compile from scratch (modulo stage cache) and render artifacts.

    A ``strict`` signoff failure propagates as
    :class:`~repro.core.errors.SignoffError` — failed builds are never
    bundled, so the store only ever serves macros that built clean (or
    whose dirty report the caller explicitly asked to keep via
    ``degrade``).
    """
    compiled = BISRAMGen(config, march).build(
        signoff=signoff, stage_cache=stage_cache)
    return render_bundle(compiled)


def compile_cached(
    config: RamConfig,
    march: MarchTest = IFA_9,
    signoff: Optional[str] = None,
    store: Optional[ArtifactStore] = None,
    stage_cache: Optional[StageCache] = None,
    use_cache: bool = True,
) -> Tuple[Dict[str, bytes], bool, str]:
    """The shared cached-compile path: ``(bundle, store_hit, key)``.

    With a store, a hit serves the integrity-checked bytes straight
    from disk; a miss builds (reusing ``stage_cache`` stages when
    given), publishes, and returns the fresh bundle.  Without a store
    (or with ``use_cache=False``) it simply builds.
    """
    key = bundle_key(config, march, signoff)
    if store is not None and use_cache:
        cached = store.get(key)
        if cached is not None:
            return cached, True, key
    bundle = build_bundle(config, march, signoff=signoff,
                          stage_cache=stage_cache)
    if store is not None and use_cache:
        store.put(key, bundle)
    return bundle, False, key
