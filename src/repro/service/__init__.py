"""Compile-as-a-service: store, bundles, and the macro server.

* :mod:`~repro.service.store` — content-addressed on-disk artifact
  store with atomic publish, integrity-checked reads, and LRU
  eviction under a byte budget,
* :mod:`~repro.service.bundle` — bundle keys (the canonical digest
  over config + march + rule deck + signoff policy) and the shared
  cached-compile path,
* :mod:`~repro.service.server` — the concurrent macro server:
  thread-pool builds, single-flight dedup, bounded-queue
  backpressure, latency metrics, graceful drain,
* :mod:`~repro.service.http` — the stdlib HTTP front-end behind
  ``repro serve`` and the matching :class:`ServiceClient`.
"""

from repro.service.bundle import (
    CORE_ARTIFACTS,
    build_bundle,
    bundle_key,
    compile_cached,
    render_bundle,
)
from repro.service.server import (
    CompileResponse,
    MacroServer,
    latency_summary,
    percentile,
)
from repro.service.store import ArtifactStore, StoreStats

__all__ = [
    "ArtifactStore",
    "StoreStats",
    "bundle_key",
    "build_bundle",
    "render_bundle",
    "compile_cached",
    "CORE_ARTIFACTS",
    "MacroServer",
    "CompileResponse",
    "latency_summary",
    "percentile",
    "ServiceClient",
    "make_http_server",
    "serve_forever_in_thread",
]


def __getattr__(name):
    # http pulls in the march registry + HTTP stack; import lazily so
    # `from repro.service import ArtifactStore` stays light.
    if name in ("ServiceClient", "make_http_server",
                "serve_forever_in_thread"):
        from repro.service import http as _http
        return getattr(_http, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")
