"""Compile-as-a-service: store, bundles, and the macro server.

* :mod:`~repro.service.store` — content-addressed on-disk artifact
  store with atomic publish, integrity-checked reads, and LRU
  eviction under a byte budget,
* :mod:`~repro.service.bundle` — bundle keys (the canonical digest
  over config + march + rule deck + signoff policy) and the shared
  cached-compile path,
* :mod:`~repro.service.server` — the concurrent macro server:
  thread-pool builds, single-flight dedup, bounded-queue
  backpressure, latency metrics, graceful drain,
* :mod:`~repro.service.backend` — the supervised multi-process build
  backend: per-request deadlines, crash blame and quarantine,
  claim-file cross-process single-flight,
* :mod:`~repro.service.wal` — the request-lifecycle write-ahead log
  that lets a killed server replay unfinished requests on restart,
* :mod:`~repro.service.ha` — the liveness lease behind warm-standby
  failover (acquire / heartbeat / release-with-handoff),
* :mod:`~repro.service.governor` — resource-pressure admission
  control (shed before ENOSPC/OOM, read-only degraded mode),
* :mod:`~repro.service.chaos` — deterministic fault injection and
  the recovery scenarios behind ``repro chaos``,
* :mod:`~repro.service.http` — the stdlib HTTP front-end behind
  ``repro serve`` and the matching :class:`ServiceClient`.
"""

from repro.service.bundle import (
    CORE_ARTIFACTS,
    build_bundle,
    bundle_key,
    compile_cached,
    render_bundle,
)
from repro.service.server import (
    CompileResponse,
    MacroServer,
    latency_summary,
    percentile,
)
from repro.service.store import ArtifactStore, StoreStats

__all__ = [
    "ArtifactStore",
    "StoreStats",
    "bundle_key",
    "build_bundle",
    "render_bundle",
    "compile_cached",
    "CORE_ARTIFACTS",
    "MacroServer",
    "CompileResponse",
    "latency_summary",
    "percentile",
    "ServiceClient",
    "make_http_server",
    "serve_forever_in_thread",
    "ProcessPoolBackend",
    "BuildResult",
    "RequestLog",
    "Lease",
    "ResourceGovernor",
    "ChaosPlan",
    "ChaosSpec",
    "run_scenario",
    "run_scenarios",
]

#: Lazily imported names -> home module (keeps
#: `from repro.service import ArtifactStore` light: http pulls in the
#: march registry + HTTP stack, backend pulls in multiprocessing,
#: chaos pulls in both).
_LAZY = {
    "ServiceClient": "repro.service.http",
    "make_http_server": "repro.service.http",
    "serve_forever_in_thread": "repro.service.http",
    "ProcessPoolBackend": "repro.service.backend",
    "BuildResult": "repro.service.backend",
    "RequestLog": "repro.service.wal",
    "Lease": "repro.service.ha",
    "ResourceGovernor": "repro.service.governor",
    "ChaosPlan": "repro.service.chaos",
    "ChaosSpec": "repro.service.chaos",
    "run_scenario": "repro.service.chaos",
    "run_scenarios": "repro.service.chaos",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is not None:
        import importlib

        return getattr(importlib.import_module(module_name), name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")
