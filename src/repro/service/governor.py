"""Admission control under resource pressure.

A macro server that admits work until the disk is full dies with
``ENOSPC`` mid-publish; one that admits until the kernel OOM-kills a
worker dies with a crash-blame storm.  The governor inverts both
failure modes into *backpressure before the cliff*:

* It samples the **free bytes on the store volume** and the **resident
  set size** of the server process plus its build workers, at most
  once per ``sample_interval_s`` (the probes are cheap but not free,
  and admission sits on the request hot path).
* Below ``disk_reserve_bytes`` free — or above ``rss_limit_bytes``
  resident — the state is **shedding**: the server refuses new builds
  with 503 + ``Retry-After`` while the pressure lasts.  Shedding is
  recoverable by waiting (evictions, finished builds, freed memory),
  which is exactly what ``Retry-After`` tells clients to do.
* Below ``disk_floor_bytes`` free (default: a quarter of the reserve)
  the state is **read_only**: the disk budget is exhausted, and even
  WAL appends are a risk — the server stops *all* writes and degrades
  to serving artifact-store hits only, so warm traffic survives a
  full volume untouched.

States are ordered ``admitting < shedding < read_only``; transitions
are counted for ``/stats``.  Probes are injectable (``disk_probe``,
``rss_probe``) so tests and the chaos harness can replay pressure
curves deterministically instead of actually filling disks.
"""

from __future__ import annotations

import shutil
import threading
import time
from pathlib import Path
from typing import Callable, Iterable, Optional

from repro.core.errors import ConfigError

#: Governor states, in increasing severity.
GOVERNOR_STATES = ("admitting", "shedding", "read_only")


def rss_bytes(pid: Optional[int] = None) -> Optional[int]:
    """Resident set size of one process in bytes, or None (no /proc,
    pid gone, permission).  ``pid=None`` means this process."""
    target = "self" if pid is None else str(pid)
    try:
        with open(f"/proc/{target}/status", "rb") as handle:
            for raw in handle:
                if raw.startswith(b"VmRSS:"):
                    return int(raw.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        return None
    return None


class ResourceGovernor:
    """Samples resource headroom and renders an admission verdict.

    Args:
        path: a directory on the volume to watch (the artifact store
            root); free-space probes run against it.
        disk_reserve_bytes: shed new builds when free space drops
            below this.  None disables disk-pressure shedding.
        disk_floor_bytes: flip to read-only-serve-hits below this
            (default ``disk_reserve_bytes // 4``) — the last-ditch
            budget where even journal appends must stop.
        rss_limit_bytes: shed when the server + worker RSS exceeds
            this.  None disables memory shedding.
        sample_interval_s: minimum seconds between probe runs; 0
            samples on every :meth:`state` call (tests).
        retry_after_s: the backoff advice attached to shed rejections.
        disk_probe: optional ``() -> int`` free-bytes override.
        rss_probe: optional ``() -> Optional[int]`` total-RSS override.
        worker_pids: optional ``() -> Iterable[int]`` (e.g.
            ``ProcessPoolBackend.worker_pids``) folded into the
            default RSS probe so build workers count against the
            memory budget too.
    """

    def __init__(
        self,
        path,
        disk_reserve_bytes: Optional[int] = None,
        disk_floor_bytes: Optional[int] = None,
        rss_limit_bytes: Optional[int] = None,
        sample_interval_s: float = 1.0,
        retry_after_s: float = 5.0,
        disk_probe: Optional[Callable[[], int]] = None,
        rss_probe: Optional[Callable[[], Optional[int]]] = None,
        worker_pids: Optional[Callable[[], Iterable[int]]] = None,
    ) -> None:
        for name, value in (("disk_reserve_bytes", disk_reserve_bytes),
                            ("disk_floor_bytes", disk_floor_bytes),
                            ("rss_limit_bytes", rss_limit_bytes)):
            if value is not None and value < 1:
                raise ConfigError(f"{name} must be positive (or None)")
        if sample_interval_s < 0:
            raise ConfigError("sample_interval_s must be >= 0")
        if retry_after_s <= 0:
            raise ConfigError("retry_after_s must be positive")
        if (disk_floor_bytes is not None and disk_reserve_bytes is not None
                and disk_floor_bytes > disk_reserve_bytes):
            raise ConfigError(
                "disk_floor_bytes must not exceed disk_reserve_bytes "
                "(the floor is the harder limit)")
        self.path = Path(path)
        self.disk_reserve_bytes = disk_reserve_bytes
        self.disk_floor_bytes = disk_floor_bytes
        if disk_floor_bytes is None and disk_reserve_bytes is not None:
            self.disk_floor_bytes = max(1, disk_reserve_bytes // 4)
        self.rss_limit_bytes = rss_limit_bytes
        self.sample_interval_s = sample_interval_s
        self.retry_after_s = retry_after_s
        self._disk_probe = disk_probe
        self._rss_probe = rss_probe
        self._worker_pids = worker_pids
        self._lock = threading.Lock()
        self._state = "admitting"
        self._sampled_at: Optional[float] = None
        self._free_bytes: Optional[int] = None
        self._rss_bytes: Optional[int] = None
        self._transitions = 0

    # -- the verdict --------------------------------------------------------

    def state(self) -> str:
        """The current admission state, resampling when due."""
        with self._lock:
            now = time.monotonic()
            if (self._sampled_at is None
                    or now - self._sampled_at >= self.sample_interval_s):
                self._sample_locked()
                self._sampled_at = now
            return self._state

    def refresh(self) -> str:
        """Force a probe run regardless of the interval."""
        with self._lock:
            self._sample_locked()
            self._sampled_at = time.monotonic()
            return self._state

    def to_dict(self) -> dict:
        """JSON-serializable snapshot for ``/stats`` (does not probe:
        operators see exactly what admissions last saw)."""
        with self._lock:
            return {
                "state": self._state,
                "free_disk_bytes": self._free_bytes,
                "rss_bytes": self._rss_bytes,
                "disk_reserve_bytes": self.disk_reserve_bytes,
                "disk_floor_bytes": self.disk_floor_bytes,
                "rss_limit_bytes": self.rss_limit_bytes,
                "retry_after_s": self.retry_after_s,
                "transitions": self._transitions,
            }

    # -- internals ----------------------------------------------------------

    def _sample_locked(self) -> None:
        free = self._probe_disk()
        rss = self._probe_rss()
        state = "admitting"
        if free is not None and self.disk_reserve_bytes is not None:
            if free < self.disk_floor_bytes:
                state = "read_only"
            elif free < self.disk_reserve_bytes:
                state = "shedding"
        if (state == "admitting" and rss is not None
                and self.rss_limit_bytes is not None
                and rss > self.rss_limit_bytes):
            state = "shedding"
        if state != self._state:
            self._transitions += 1
        self._state = state
        self._free_bytes = free
        self._rss_bytes = rss

    def _probe_disk(self) -> Optional[int]:
        if self._disk_probe is not None:
            return int(self._disk_probe())
        if self.disk_reserve_bytes is None:
            return None  # nothing to compare against; skip the stat
        probe = self.path if self.path.exists() else self.path.parent
        try:
            return shutil.disk_usage(probe).free
        except OSError:
            return None  # unknowable headroom must not wedge serving

    def _probe_rss(self) -> Optional[int]:
        if self._rss_probe is not None:
            return self._rss_probe()
        if self.rss_limit_bytes is None:
            return None
        total = rss_bytes()
        if self._worker_pids is not None:
            for pid in self._worker_pids():
                worker = rss_bytes(pid)
                if worker is not None:
                    total = (total or 0) + worker
        return total
