"""Content-addressed on-disk artifact store for compiled macros.

One compiled configuration — CIF layout, TRPLA plane files, datasheet,
area report, signoff report — is a *bundle* of named artifacts keyed
by a canonical digest over everything that determines its bytes (the
:class:`~repro.core.config.RamConfig`, the march test, the process
rule deck, the signoff policy; see :func:`repro.service.bundle.bundle_key`).

On disk::

    <root>/objects/<k0k1>/<key>/manifest.json   per-artifact sha256 + size
    <root>/objects/<k0k1>/<key>/<artifact>      the raw bytes
    <root>/tmp/                                 staging for atomic publish

Guarantees:

* **Atomic writes** — a bundle is staged under ``tmp/`` and published
  with one ``os.rename``, so readers (including concurrent campaign
  worker processes) never observe a half-written entry; losing a
  publish race to another writer is silently fine because content
  addressing makes both copies identical.
* **Integrity on read** — every artifact is re-hashed against its
  manifest entry; any mismatch, truncation, or missing file deletes
  the entry and reports a *miss* (the caller rebuilds), never a crash
  or a silently corrupt artifact.
* **LRU eviction** — an optional byte budget; least-recently-used
  bundles are dropped first (access order is tracked in-process and
  falls back to manifest mtimes for entries created by other
  processes).  Eviction unlinks the manifest *first*, so a concurrent
  reader in another process observes a clean miss, never a
  half-deleted bundle.
* **Crash durability** — after the publish rename the parent
  directories are fsynced, so a power cut cannot lose the directory
  entry of a bundle whose bytes were already durable.
* **Claims** — per-digest claim files (``claims/<key>.claim``,
  created with ``O_EXCL``) give builders multi-process single-flight:
  one worker builds, the rest wait for the publish.  A claim whose
  owning pid is dead (or recycled: same pid, different process start
  time), or older than its staleness budget, can be broken and
  adopted — a crashed builder never wedges its digest.
* **Observability** — :class:`StoreStats` counts hits, misses,
  writes, evictions, corruption events, and current footprint, all
  JSON-serializable for the server's ``/stats`` endpoint.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import shutil
import socket
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.core.durability import fsync_dir
from repro.core.errors import ConfigError
from repro.core.liveness import process_start_time, same_process

MANIFEST = "manifest.json"
STORE_VERSION = 1

#: Process-wide staging counter so concurrent threads never collide on
#: a staging directory name.
_STAGING_IDS = itertools.count()


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


@dataclass
class StoreStats:
    """JSON-serializable counters for one store instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    evictions: int = 0
    corrupt: int = 0
    #: Filled in by :meth:`ArtifactStore.stats` at read time.
    bytes: int = 0
    entries: int = 0
    byte_budget: Optional[int] = None

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
            "bytes": self.bytes,
            "entries": self.entries,
            "byte_budget": self.byte_budget,
            "hit_rate": round(self.hit_rate, 4),
        }


@dataclass(frozen=True)
class _Entry:
    """One published bundle as seen during an eviction scan."""

    key: str
    path: Path
    size: int
    last_access: float


class ArtifactStore:
    """Content-addressed bundle store (see the module docstring).

    Args:
        root: store directory (created if missing).
        byte_budget: optional cap on the summed artifact bytes; when
            exceeded after a write, least-recently-used bundles are
            evicted until the store fits.

    Thread-safe within a process; safe against concurrent writers in
    other processes thanks to atomic publish (their entries simply
    appear; eviction races at worst delete a bundle the other process
    re-creates on its next miss).
    """

    def __init__(self, root, byte_budget: Optional[int] = None) -> None:
        if byte_budget is not None and byte_budget < 1:
            raise ConfigError("byte_budget must be positive (or None)")
        self.root = Path(root)
        self.byte_budget = byte_budget
        self._objects = self.root / "objects"
        self._staging = self.root / "tmp"
        self._claims = self.root / "claims"
        self._objects.mkdir(parents=True, exist_ok=True)
        self._staging.mkdir(parents=True, exist_ok=True)
        self._claims.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._stats = StoreStats(byte_budget=byte_budget)
        #: In-process access ordering (monotone counter per key); the
        #: tie-breaker above manifest mtimes, whose resolution is too
        #: coarse to order a test's back-to-back accesses.
        self._access: Dict[str, int] = {}
        self._access_clock = itertools.count(1)

    # -- public API ---------------------------------------------------------

    def contains(self, key: str) -> bool:
        """Whether a published entry exists (no integrity check, no
        hit/miss accounting) — the cheap existence probe builders use
        while waiting on another process's publish."""
        self._check_key(key)
        return (self._entry_dir(key) / MANIFEST).is_file()

    def verify(self, key: str) -> bool:
        """Integrity-check one bundle without returning its bytes.

        A corrupt or torn entry is deleted (and counted) exactly as in
        :meth:`get`, so a False answer means "gone; rebuild".  Neither
        outcome counts as a hit or a miss.
        """
        self._check_key(key)
        with self._lock:
            entry = self._entry_dir(key)
            manifest_path = entry / MANIFEST
            if not manifest_path.is_file():
                return False
            if self._verified_read(key, entry, manifest_path) is None:
                self._stats.corrupt += 1
                return False
            return True

    def get(self, key: str) -> Optional[Dict[str, bytes]]:
        """The bundle for ``key``, or None (miss *or* corruption).

        A corrupt entry — bad hash, wrong size, missing artifact,
        unreadable manifest — is deleted and counted, and the call
        reports a miss so the caller rebuilds.
        """
        self._check_key(key)
        with self._lock:
            entry = self._entry_dir(key)
            manifest_path = entry / MANIFEST
            if not manifest_path.is_file():
                self._stats.misses += 1
                return None
            artifacts = self._verified_read(key, entry, manifest_path)
            if artifacts is None:
                self._stats.corrupt += 1
                self._stats.misses += 1
                return None
            self._stats.hits += 1
            self._touch(key, manifest_path)
            return artifacts

    def put(self, key: str, artifacts: Mapping[str, bytes]) -> bool:
        """Publish a bundle atomically; True if this call stored it.

        Returns False when the key already exists (another thread,
        process, or an earlier call won the race) — content addressing
        makes the existing entry equivalent, so losing is success.
        """
        self._check_key(key)
        if not artifacts:
            raise ConfigError("refusing to store an empty bundle")
        for name in artifacts:
            if (not name or name == MANIFEST or "/" in name
                    or "\\" in name or name.startswith(".")):
                raise ConfigError(f"invalid artifact name {name!r}")
        with self._lock:
            final = self._entry_dir(key)
            if (final / MANIFEST).is_file():
                self._touch(key, final / MANIFEST)
                return False
            staged = self._staging / \
                f"{key[:16]}.{os.getpid()}.{next(_STAGING_IDS)}"
            staged.mkdir(parents=True)
            try:
                manifest = {
                    "version": STORE_VERSION,
                    "key": key,
                    "artifacts": {},
                }
                for name, data in sorted(artifacts.items()):
                    self._write_file(staged / name, data)
                    manifest["artifacts"][name] = {
                        "sha256": _sha256(data),
                        "bytes": len(data),
                    }
                # Manifest last: its presence marks the entry complete.
                self._write_file(
                    staged / MANIFEST,
                    json.dumps(manifest, sort_keys=True,
                               indent=1).encode("utf-8"),
                )
                final.parent.mkdir(parents=True, exist_ok=True)
                try:
                    os.rename(staged, final)
                except OSError:
                    # Lost the publish race; the surviving copy is
                    # byte-identical by construction.
                    shutil.rmtree(staged, ignore_errors=True)
                    return False
                # Artifact bytes are fsynced above; syncing the parent
                # directories makes the *entry* survive power loss too
                # (the rename alone does not).
                fsync_dir(final.parent)
                fsync_dir(self._objects)
            except Exception:
                shutil.rmtree(staged, ignore_errors=True)
                raise
            self._stats.writes += 1
            self._touch(key, final / MANIFEST)
            if self.byte_budget is not None:
                self._evict_to_budget()
            return True

    def delete(self, key: str) -> bool:
        """Drop one bundle; True if it existed."""
        self._check_key(key)
        with self._lock:
            entry = self._entry_dir(key)
            existed = entry.exists()
            self._remove_entry(key, entry)
            return existed

    def keys(self) -> List[str]:
        """Keys of every published bundle, sorted."""
        with self._lock:
            return sorted(e.key for e in self._scan())

    def total_bytes(self) -> int:
        """Summed artifact bytes across published bundles."""
        with self._lock:
            return sum(e.size for e in self._scan())

    # -- claims: multi-process single-flight --------------------------------

    def try_claim(self, key: str, stale_s: float = 120.0) -> bool:
        """Try to become the builder for ``key``; True on success.

        The claim is a file created with ``O_EXCL`` — the atomic
        cross-process mutex — recording owner pid, host, and wall
        time.  A claim is *stale* (and silently broken, then re-taken)
        when its owning pid no longer exists on this host or it is
        older than ``stale_s``: a builder that died mid-compile must
        never wedge its digest forever.
        """
        self._check_key(key)
        if stale_s <= 0:
            raise ConfigError("stale_s must be positive")
        path = self._claim_path(key)
        for _ in range(2):  # second try after breaking a stale claim
            try:
                fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL)
            except FileExistsError:
                holder = self.claim_holder(key)
                if holder is None:
                    # Exists but unreadable: a live writer between its
                    # O_EXCL open and the flushed holder stamp, not a
                    # corpse.  Only file age may prove it abandoned —
                    # breaking it on sight double-admits the builder.
                    try:
                        age = time.time() - os.path.getmtime(path)
                    except OSError:
                        continue  # vanished underneath us: re-race
                    if age <= stale_s:
                        return False
                elif not self._claim_stale(holder, stale_s):
                    return False
                # Stale (or abandoned-unreadable) claim: break, re-race.
                try:
                    os.unlink(path)
                except OSError:
                    pass
                continue
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump({"pid": os.getpid(),
                           "start": process_start_time(os.getpid()),
                           "host": socket.gethostname(),
                           "time": time.time(), "key": key}, handle)
                handle.flush()
                os.fsync(handle.fileno())
            return True
        return False

    def release_claim(self, key: str) -> None:
        """Drop this process's claim (idempotent; unowned is a no-op)."""
        self._check_key(key)
        try:
            os.unlink(self._claim_path(key))
        except OSError:
            pass

    def claim_holder(self, key: str) -> Optional[dict]:
        """The claim record for ``key``, or None (no claim / torn)."""
        self._check_key(key)
        try:
            return json.loads(self._claim_path(key).read_text("utf-8"))
        except (OSError, json.JSONDecodeError):
            return None

    def _claim_path(self, key: str) -> Path:
        return self._claims / f"{key}.claim"

    @staticmethod
    def _claim_stale(holder: dict, stale_s: float) -> bool:
        age = time.time() - holder.get("time", 0.0)
        if age > stale_s:
            return True
        pid = holder.get("pid")
        if (holder.get("host") == socket.gethostname()
                and isinstance(pid, int)):
            # Dead pid — or a *recycled* one: same number, different
            # process start time.  Either way the owner is gone and
            # the claim is adoptable immediately.
            if not same_process(pid, holder.get("start")):
                return True
        return False

    @property
    def stats(self) -> StoreStats:
        """Counters with the current footprint filled in."""
        with self._lock:
            entries = list(self._scan())
            self._stats.bytes = sum(e.size for e in entries)
            self._stats.entries = len(entries)
            return self._stats

    # -- internals ----------------------------------------------------------

    @staticmethod
    def _check_key(key: str) -> None:
        if not key or not all(c in "0123456789abcdef" for c in key):
            raise ConfigError(
                f"store keys are lowercase hex digests, got {key!r}"
            )

    def _entry_dir(self, key: str) -> Path:
        return self._objects / key[:2] / key

    @staticmethod
    def _write_file(path: Path, data: bytes) -> None:
        with open(path, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())

    def _verified_read(self, key: str, entry: Path,
                       manifest_path: Path) -> Optional[Dict[str, bytes]]:
        """Read + integrity-check one bundle; None deletes the entry."""
        try:
            manifest = json.loads(manifest_path.read_text("utf-8"))
            if (manifest.get("version") != STORE_VERSION
                    or manifest.get("key") != key):
                raise ValueError("manifest identity mismatch")
            artifacts: Dict[str, bytes] = {}
            for name, meta in manifest["artifacts"].items():
                data = (entry / name).read_bytes()
                if (len(data) != meta["bytes"]
                        or _sha256(data) != meta["sha256"]):
                    raise ValueError(f"artifact {name} fails its hash")
                artifacts[name] = data
            return artifacts
        except (OSError, ValueError, KeyError, TypeError,
                json.JSONDecodeError):
            shutil.rmtree(entry, ignore_errors=True)
            self._access.pop(key, None)
            return None

    def _touch(self, key: str, manifest_path: Path) -> None:
        self._access[key] = next(self._access_clock)
        try:
            os.utime(manifest_path)
        except OSError:
            pass  # LRU freshness only; never worth failing a read

    def _scan(self) -> Iterator[_Entry]:
        for shard in self._objects.iterdir() if \
                self._objects.exists() else ():
            if not shard.is_dir():
                continue
            for entry in shard.iterdir():
                manifest_path = entry / MANIFEST
                try:
                    manifest = json.loads(
                        manifest_path.read_text("utf-8"))
                    size = sum(int(m["bytes"]) for m in
                               manifest["artifacts"].values())
                    mtime = manifest_path.stat().st_mtime
                except (OSError, ValueError, KeyError, TypeError,
                        json.JSONDecodeError):
                    continue  # unpublished or torn; ignore
                yield _Entry(key=entry.name, path=entry, size=size,
                             last_access=mtime)

    def _evict_to_budget(self) -> None:
        """Drop LRU bundles until the store fits its byte budget."""
        entries = list(self._scan())
        total = sum(e.size for e in entries)
        if total <= self.byte_budget:
            return
        # In-process access order wins; mtime orders foreign entries.
        entries.sort(key=lambda e: (self._access.get(e.key, 0),
                                    e.last_access))
        for entry in entries:
            if total <= self.byte_budget:
                break
            self._remove_entry(entry.key, entry.path)
            total -= entry.size
            self._stats.evictions += 1

    def _remove_entry(self, key: str, entry: Path) -> None:
        """Drop a bundle manifest-first.

        The manifest's presence is what marks an entry published, so
        unlinking it before the artifacts turns a concurrent reader's
        view into a clean miss; deleting artifacts first would let a
        reader load the manifest and then find bytes missing —
        indistinguishable from corruption.
        """
        try:
            os.unlink(entry / MANIFEST)
        except OSError:
            pass
        shutil.rmtree(entry, ignore_errors=True)
        self._access.pop(key, None)
