"""High-availability primitives: the liveness lease.

Warm-standby failover needs exactly one piece of shared truth: *who is
the primary right now?*  The lease file answers it with the same
file-based, crash-tolerant discipline as the artifact store's claim
files — in fact it shares their liveness logic
(:mod:`repro.core.liveness`), so a recycled pid cannot impersonate a
dead primary here either.

The lease is one small JSON document, always rewritten whole via
tmp + ``os.replace`` + directory fsync (readers never observe a torn
record)::

    {"pid": 1234, "host": "buildbox", "start": 8891021,
     "time": 1722e9, "epoch": 7, "state": "active"}

* ``(pid, host, start)`` is the holder's robust identity.
* ``time`` is the last heartbeat wall-clock; a record older than the
  TTL is **expired** even if the pid looks alive (the primary may be
  wedged — a heartbeat it cannot write is a lease it cannot keep).
* ``epoch`` increments on every acquisition, so stats and logs can
  tell the third primary from the first.
* ``state: released`` is the cooperative path: a draining primary
  writes it after fsyncing WAL + store, and the standby may promote
  immediately instead of waiting out the TTL.

Failure modes and their outcomes:

=====================  ==================================================
primary fate           standby's view
=====================  ==================================================
clean drain            ``state: released`` → promote immediately
SIGKILL                heartbeats stop → TTL expiry → promote
pid recycled           ``same_process`` false → expired → promote
wedged (alive, stuck)  heartbeats stop → TTL expiry → promote; the old
                       primary notices its own failed heartbeat and
                       self-demotes to draining (split-brain guard)
=====================  ==================================================
"""

from __future__ import annotations

import json
import os
import socket
import time
from pathlib import Path
from typing import Optional

from repro.core.durability import fsync_dir, fsync_file
from repro.core.errors import ConfigError
from repro.core.liveness import process_start_time, same_process


class Lease:
    """A single-holder liveness lease backed by one JSON file.

    Args:
        path: the lease file; its directory must exist.
        ttl_s: staleness horizon — a record whose last heartbeat is
            older than this is expired regardless of pid liveness.

    Not thread-safe by itself; the server serialises access under its
    own lock (heartbeat thread vs drain vs stats).
    """

    def __init__(self, path, ttl_s: float = 10.0) -> None:
        if ttl_s <= 0:
            raise ConfigError("lease ttl_s must be positive")
        self.path = Path(path)
        self.ttl_s = ttl_s
        self._epoch: Optional[int] = None  # set while we hold it

    # -- reading ------------------------------------------------------------

    def read(self) -> Optional[dict]:
        """The current record, or None (absent / torn / unparsable —
        all equivalent to 'no one holds it' for expiry purposes)."""
        try:
            record = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        return record if isinstance(record, dict) else None

    def expired(self, record: Optional[dict] = None) -> bool:
        """Whether the lease is up for grabs.

        True for: no record, a released record, a heartbeat older than
        the TTL, or a local holder whose ``(pid, start)`` no longer
        names a live process (dead or recycled).  A *remote* holder is
        judged by heartbeat age alone — pids don't travel.
        """
        if record is None:
            record = self.read()
        if record is None:
            return True
        if record.get("state") == "released":
            return True
        if time.time() - record.get("time", 0.0) > self.ttl_s:
            return True
        pid = record.get("pid")
        if (record.get("host") == socket.gethostname()
                and isinstance(pid, int)
                and not same_process(pid, record.get("start"))):
            return True
        return False

    def owned(self, record: Optional[dict] = None) -> bool:
        """Whether *this process* holds the lease right now."""
        if record is None:
            record = self.read()
        return (record is not None
                and record.get("state") == "active"
                and record.get("pid") == os.getpid()
                and record.get("host") == socket.gethostname()
                and record.get("start")
                == process_start_time(os.getpid()))

    @property
    def epoch(self) -> Optional[int]:
        """The epoch we acquired under, or None when not holding."""
        return self._epoch

    def describe(self) -> dict:
        """JSON-serializable snapshot for ``/stats``."""
        record = self.read()
        return {
            "path": str(self.path),
            "ttl_s": self.ttl_s,
            "held_by_us": self.owned(record),
            "expired": self.expired(record),
            "epoch": (record or {}).get("epoch"),
            "state": (record or {}).get("state"),
            "holder_pid": (record or {}).get("pid"),
        }

    # -- holding ------------------------------------------------------------

    def acquire(self) -> bool:
        """Take the lease if it is free, expired, or already ours.

        Returns False when a live holder exists — the caller must not
        start a second primary against the same store.
        """
        record = self.read()
        if record is not None and not self.expired(record) \
                and not self.owned(record):
            return False
        epoch = ((record or {}).get("epoch") or 0) + 1
        self._write(self._record(epoch, "active"))
        self._epoch = epoch
        return True

    def heartbeat(self) -> bool:
        """Refresh our heartbeat; False when the lease slipped away.

        A False return is the split-brain guard firing: someone else
        acquired the lease (we were presumed dead), or the file was
        replaced.  The caller must stop acting as primary.
        """
        record = self.read()
        if not self.owned(record):
            self._epoch = None
            return False
        self._write(self._record(record["epoch"], "active"))
        return True

    def release(self, handoff: bool = True) -> None:
        """Give the lease up cooperatively.

        ``handoff=True`` writes ``state: released`` so a watching
        standby promotes immediately; ``handoff=False`` deletes the
        file outright.  A no-op when we do not hold it (never clobber
        a successor's record).
        """
        record = self.read()
        if not self.owned(record):
            self._epoch = None
            return
        if handoff:
            self._write(self._record(record["epoch"], "released"))
        else:
            try:
                self.path.unlink()
            except OSError:
                pass
            fsync_dir(self.path.parent)
        self._epoch = None

    # -- internals ----------------------------------------------------------

    @staticmethod
    def _record(epoch: int, state: str) -> dict:
        pid = os.getpid()
        return {
            "pid": pid,
            "host": socket.gethostname(),
            "start": process_start_time(pid),
            "time": time.time(),
            "epoch": epoch,
            "state": state,
        }

    def _write(self, record: dict) -> None:
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True))
            fsync_file(handle)
        os.replace(tmp, self.path)
        fsync_dir(self.path.parent)
