"""Request-lifecycle write-ahead log for the macro server.

A server that is SIGKILLed mid-build loses its queue.  The artifact
store already guarantees no *corrupt* result survives, but the killed
requests themselves would simply vanish — a client that fire-and-forgot
a warm-up sweep, or a replicated front-end that acked admission, has
lost work.  The WAL closes that hole with the same append-only JSONL
discipline as the campaign :class:`~repro.runtime.journal.CheckpointJournal`:

* An ``admit`` record — the full request (bundle key, canonical config
  dict, march name + notation, signoff policy) — is appended and
  **fsynced before the build is dispatched**, so an admitted request is
  durable by the time any work happens.
* A ``done`` record retires it on completion (``ok`` / ``failed``);
  deterministic failures are done too — replaying a config error
  forever would be a crash loop, not recovery.
* On restart, :meth:`RequestLog.open` replays the file — forgiving a
  torn *final* line (the record a kill interrupted mid-append),
  refusing corruption anywhere earlier — and returns every admitted-
  but-not-done request for the server to re-execute.  Replay is
  idempotent by construction: requests are content-addressed, so a
  build that actually published before the crash becomes a store hit.
* The file is **compacted** on open and periodically afterwards
  (rewritten atomically with only the still-pending admits, then
  directory-fsynced), so the log tracks the in-flight set instead of
  growing with traffic.

The format is deliberately self-contained: a WAL can be replayed by a
*different* server process pointed at the same store, which is exactly
what the chaos harness's kill-and-restart scenario does.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Dict, List, Optional

from repro.core.durability import fsync_dir, fsync_file
from repro.core.errors import ConfigError

WAL_VERSION = 1

#: ``done`` records absorbed since the last compaction before the log
#: is rewritten.  Chosen so steady-state traffic compacts a few times a
#: minute at worst while a burst never grows the file unboundedly.
COMPACT_EVERY = 256


class RequestLog:
    """One macro server's write-ahead log of admitted requests.

    Usage::

        wal = RequestLog(path)
        pending = wal.open()          # replayable requests, oldest first
        rid = wal.admit(key=..., config=..., march_name=...,
                        march_notation=..., signoff=...)
        ...build...
        wal.done(rid, "ok")
        wal.close()

    Thread-safe: the server appends from many request threads.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._handle = None
        self._lock = threading.Lock()
        self._pending: Dict[str, dict] = {}
        self._sequence = 0
        self._finished_since_compact = 0

    # -- lifecycle ----------------------------------------------------------

    def open(self) -> List[dict]:
        """Load (or create) the log; return pending admits, oldest
        first, and compact the file down to exactly those."""
        with self._lock:
            if self._handle is not None:
                raise ConfigError("request log is already open")
            if self.path.exists():
                self._load()
            self._compact_locked()
            return list(self._pending.values())

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "RequestLog":
        self.open()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the request lifecycle ----------------------------------------------

    def admit(self, key: str, config: dict, march_name: str,
              march_notation: str,
              signoff: Optional[str] = None) -> str:
        """Record one admitted request; durable once this returns."""
        with self._lock:
            if self._handle is None:
                raise ConfigError("admit() before open()")
            self._sequence += 1
            record = {
                "type": "admit",
                "id": f"r{self._sequence:08d}",
                "key": key,
                "config": dict(config),
                "march_name": march_name,
                "march_notation": march_notation,
                "signoff": signoff,
            }
            self._append(record)
            self._pending[record["id"]] = {
                k: v for k, v in record.items() if k != "type"}
            return record["id"]

    def done(self, request_id: str, status: str = "ok") -> None:
        """Retire one admitted request (idempotent for unknown ids —
        e.g. a replayed request that was also compacted away)."""
        if status not in ("ok", "failed"):
            raise ConfigError(
                f"done status must be 'ok' or 'failed', got {status!r}")
        with self._lock:
            if self._handle is None:
                raise ConfigError("done() before open()")
            if request_id not in self._pending:
                return
            self._append({"type": "done", "id": request_id,
                          "status": status})
            del self._pending[request_id]
            self._finished_since_compact += 1
            if self._finished_since_compact >= COMPACT_EVERY:
                self._compact_locked()

    def pending(self) -> List[dict]:
        """Still-admitted requests, oldest first."""
        with self._lock:
            return list(self._pending.values())

    @property
    def is_open(self) -> bool:
        """Whether this log currently owns its file handle.

        A warm standby carries an *unopened* RequestLog until it
        promotes — the primary owns the file until then — so drain and
        stats paths must be able to ask before touching it.
        """
        with self._lock:
            return self._handle is not None

    def compact(self) -> None:
        """Rewrite the file down to the header + pending admits.

        Refused before :meth:`open`: compacting an unloaded log would
        rewrite the file from an *empty* pending set, destroying a
        live primary's journal out from under it.
        """
        with self._lock:
            if self._handle is None:
                raise ConfigError("compact() before open()")
            self._compact_locked()

    # -- internals ----------------------------------------------------------

    def _append(self, record: dict) -> None:
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        fsync_file(self._handle)

    def _load(self) -> None:
        """Parse an existing log into ``self._pending``.

        The same tolerance contract as the checkpoint journal: a torn
        *final* line is the record a kill interrupted and is forgiven;
        corruption anywhere earlier means the file was damaged, not
        interrupted, and is refused.
        """
        lines = self.path.read_text(encoding="utf-8").splitlines()
        if not lines:
            return  # torn header write; treat as a fresh log
        header = self._parse_json(lines[0], 1, len(lines))
        if header is None:
            return  # single torn line: a fresh log that died mid-header
        if (not isinstance(header, dict)
                or header.get("type") != "header"):
            raise ConfigError(
                f"request log {self.path} does not start with a header")
        if header.get("version") != WAL_VERSION:
            raise ConfigError(
                f"request log {self.path} is WAL version "
                f"{header.get('version')!r}; this server reads "
                f"version {WAL_VERSION}")
        for lineno, line in enumerate(lines[1:], start=2):
            if not line.strip():
                continue
            record = self._parse_json(line, lineno, len(lines))
            if record is None:
                break  # torn final line from the interrupted run
            rid = record.get("id")
            if record.get("type") == "admit" and isinstance(rid, str):
                self._pending[rid] = {
                    k: v for k, v in record.items() if k != "type"}
                self._sequence = max(self._sequence,
                                     self._sequence_of(rid))
            elif record.get("type") == "done" and isinstance(rid, str):
                self._pending.pop(rid, None)

    def _parse_json(self, line: str, lineno: int,
                    total: int) -> Optional[dict]:
        try:
            return json.loads(line)
        except json.JSONDecodeError:
            if lineno == total:
                return None
            raise ConfigError(
                f"request log {self.path} is corrupt at line {lineno} "
                f"(not a torn tail; refusing to guess)") from None

    @staticmethod
    def _sequence_of(rid: str) -> int:
        try:
            return int(rid.lstrip("r"))
        except ValueError:
            return 0

    def _compact_locked(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        header = {"type": "header", "version": WAL_VERSION}
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(header, sort_keys=True) + "\n")
            for record in self._pending.values():
                handle.write(json.dumps({"type": "admit", **record},
                                        sort_keys=True) + "\n")
            fsync_file(handle)
        os.replace(tmp, self.path)
        fsync_dir(self.path.parent)
        self._handle = open(self.path, "a", encoding="utf-8")
        self._finished_since_compact = 0
