"""HTTP transport for the macro server, plus the client helper.

The wire format is deliberately small and stdlib-only:

* ``POST /compile`` — body ``{"config": {...}, "march": "IFA-9",
  "signoff": null, "include": ["macro.cif", ...]}``.  Responds with
  the bundle manifest (per-artifact sha256 + size), the parsed
  datasheet/area payloads, and — for names listed in ``include`` —
  the artifact bytes, base64-encoded.
* ``POST /compile_batch`` — body ``{"items": [{"config": {...},
  "march": "IFA-9", "signoff": null}, ...], "include": [...]}``.
  Responds 200 with ``Content-Type: application/x-ndjson`` and
  **streams one JSON line per item as it completes** (out of order;
  each line carries the item's ``index``), ending with a
  ``{"done": true, "items": N, "ok": a, "failed": b}`` sentinel.
  Per-item failures are lines with ``status: "failed"`` and a
  ``kind`` (``config`` / ``signoff`` / ``crashed`` / ``unavailable``
  / ``build``) — one poison config never fails the batch.  A batch
  larger than the server's ``batch_limit`` is refused whole with 413.
* ``POST /admin/drain`` — begin a graceful drain + lease handoff;
  responds 202 immediately (drain finishes in the background).
* ``GET /artifact/<key>/<name>`` — raw artifact bytes from the store
  (octet-stream; 404 on a miss).
* ``GET /stats`` — the server's JSON metrics (latency percentiles,
  hit/build/coalesce/reject counts, per-endpoint counters, governor
  and lease state, store + stage-cache stats).
* ``GET /healthz`` — liveness + drain state + role + governor state.
* ``GET /readyz`` — readiness: 503 while the server is still
  replaying its WAL backlog from a crashed predecessor (it *serves*
  during replay — readiness is for load balancers deciding where to
  send fresh traffic).

Every response carries ``X-Served-By: primary|standby`` so clients
(and the failover smoke test) can see who answered.

Status codes: 400 for a bad request (unknown config field, bad march
notation — anything :class:`~repro.core.errors.ConfigError`), 413 for
an oversized batch, 422 for a build that failed strict signoff, 503
when backpressure, resource pressure, or draining rejects the
request, 500 for the unexpected.  Every 503 carries a ``Retry-After``
header (seconds); :class:`ServiceClient` honors it with bounded,
jittered backoff instead of failing fast.

:class:`ServiceClient` is the matching stdlib client the campaign
runtime and the benchmarks use.  It takes a ``failover`` list of
alternate endpoints and rotates onto them when a connection is
refused or reset — the transparent-failover half of the HA story.
"""

from __future__ import annotations

import base64
import json
import random
import threading
import time
from concurrent.futures import as_completed
from http.client import HTTPConnection
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Iterable, Iterator, Optional, Sequence, Tuple

from repro.bist.march import MarchTest, parse_march
from repro.bist import ALL_TESTS
from repro.core.config import RamConfig
from repro.core.errors import (
    BuildCrashed,
    ConfigError,
    ReproError,
    ServiceUnavailable,
    SignoffError,
)
from repro.service.server import CompileResponse, MacroServer

_MARCHES = {t.name: t for t in ALL_TESTS}


def resolve_march(name: str) -> MarchTest:
    """A known march by name, or user notation parsed on the spot."""
    if name in _MARCHES:
        return _MARCHES[name]
    return parse_march("custom", name)


def compile_payload(response: CompileResponse,
                    include: Tuple[str, ...] = ()) -> dict:
    """The JSON body for one successful compile."""
    payload = {
        "key": response.key,
        "cached": response.cached,
        "elapsed_s": round(response.elapsed_s, 6),
        "artifacts": response.manifest(),
        "datasheet": json.loads(
            response.artifacts["datasheet.json"].decode("utf-8")),
        "area": json.loads(
            response.artifacts["area.json"].decode("utf-8")),
    }
    if "signoff.json" in response.artifacts:
        payload["signoff"] = json.loads(
            response.artifacts["signoff.json"].decode("utf-8"))
    content = {}
    for name in include:
        if name in response.artifacts:
            content[name] = base64.b64encode(
                response.artifacts[name]).decode("ascii")
    if content:
        payload["content"] = content
    return payload


class _Handler(BaseHTTPRequestHandler):
    """Thin HTTP glue over the owning :class:`MacroServer`."""

    server_version = "bisramgen-macroserver/1.0"

    # Set by make_http_server on the ThreadingHTTPServer instance.
    @property
    def macro_server(self) -> MacroServer:
        return self.server.macro_server  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib name
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _reply(self, status: int, payload: dict,
               headers: Optional[dict] = None) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("X-Served-By", self.macro_server.role)
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _reply_unavailable(self, error: ServiceUnavailable) -> None:
        self._reply(503, {
            "error": str(error),
            "reason": error.reason,
            "retry_after_s": error.retry_after_s,
        }, headers={"Retry-After": f"{error.retry_after_s:g}"})

    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        if self.path == "/stats":
            self._reply(200, self.macro_server.stats())
        elif self.path == "/healthz":
            governor = self.macro_server.governor
            self._reply(200, {
                "status": "draining" if self.macro_server.draining
                else "ok",
                "role": self.macro_server.role,
                "governor": (governor.state() if governor is not None
                             else "admitting"),
            })
        elif self.path == "/readyz":
            if self.macro_server.ready:
                self._reply(200, {"status": "ready"})
            else:
                self._reply_unavailable(ServiceUnavailable(
                    "still replaying the write-ahead log",
                    reason="not_ready", retry_after_s=2.0))
        elif self.path.startswith("/artifact/"):
            self._handle_artifact()
        else:
            self._reply(404, {"error": f"no such endpoint {self.path}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        if self.path == "/compile":
            self.macro_server.count_endpoint("compile")
            try:
                self._handle_compile()
            finally:
                self._count_request()
        elif self.path == "/compile_batch":
            self.macro_server.count_endpoint("compile_batch")
            try:
                self._handle_batch()
            finally:
                self._count_request()
        elif self.path == "/admin/drain":
            # Drain blocks until in-flight builds finish; answer 202
            # now and let it run — /healthz flips to "draining" and
            # the lease release is the observable completion signal.
            threading.Thread(target=self.macro_server.drain,
                             name="macroserver-drain",
                             daemon=True).start()
            self._reply(202, {"status": "draining",
                              "role": self.macro_server.role})
        else:
            self._reply(404, {"error": f"no such endpoint {self.path}"})

    def _count_request(self) -> None:
        """Stop the serve loop after ``max_requests`` compiles (CI)."""
        limit = getattr(self.server, "max_requests", None)
        if limit is None:
            return
        with self.server.count_lock:  # type: ignore[attr-defined]
            self.server.served += 1  # type: ignore[attr-defined]
            done = self.server.served >= limit  # type: ignore
        if done:
            # shutdown() blocks until serve_forever returns; never call
            # it from the loop's own thread — hand it to a helper.
            threading.Thread(target=self.server.shutdown,
                             daemon=True).start()

    def _handle_compile(self) -> None:
        try:
            length = int(self.headers.get("Content-Length", 0))
            request = json.loads(self.rfile.read(length) or b"{}")
            config = RamConfig.from_dict(request.get("config", {}))
            march = resolve_march(request.get("march", "IFA-9"))
            signoff = request.get("signoff")
            include = tuple(request.get("include", ()))
            response = self.macro_server.compile(
                config, march, signoff=signoff)
        except ServiceUnavailable as error:
            self._reply_unavailable(error)
        except SignoffError as error:
            self._reply(422, {"error": str(error),
                              "failure_class": error.failure_class,
                              "report": error.report})
        except (ConfigError, ReproError, ValueError, KeyError,
                json.JSONDecodeError) as error:
            self._reply(400, {"error": f"{type(error).__name__}: "
                                       f"{error}"})
        except Exception as error:  # pragma: no cover - defensive
            self._reply(500, {"error": f"{type(error).__name__}: "
                                       f"{error}"})
        else:
            self._reply(200, compile_payload(response, include))

    def _handle_batch(self) -> None:
        """``POST /compile_batch``: admit N items, stream NDJSON."""
        try:
            length = int(self.headers.get("Content-Length", 0))
            request = json.loads(self.rfile.read(length) or b"{}")
            items = request.get("items")
            include = tuple(request.get("include", ()))
        except (ValueError, json.JSONDecodeError) as error:
            self._reply(400, {"error": f"{type(error).__name__}: "
                                       f"{error}"})
            return
        if not isinstance(items, list) or not items:
            self._reply(400, {"error": "the body must carry a "
                                       "non-empty 'items' list"})
            return
        limit = self.macro_server.batch_limit
        if len(items) > limit:
            self._reply(413, {
                "error": f"batch of {len(items)} item(s) exceeds the "
                         f"batch limit of {limit}; split it",
                "limit": limit,
            })
            return
        # Parse everything up front: items that do not even parse get
        # failure lines; the rest are admitted as one batch.
        parsed = []  # (index, config, march, signoff)
        error_lines = []
        for index, item in enumerate(items):
            try:
                if not isinstance(item, dict):
                    raise ConfigError(
                        "each batch item must be a JSON object")
                config = RamConfig.from_dict(item.get("config", {}))
                march = resolve_march(item.get("march", "IFA-9"))
                parsed.append((index, config, march,
                               item.get("signoff")))
            except (ConfigError, ReproError, ValueError,
                    KeyError) as error:
                error_lines.append({
                    "index": index, "status": "failed",
                    "kind": "config",
                    "error": f"{type(error).__name__}: {error}"})
        outcomes = self.macro_server.submit_batch(
            [(config, march, signoff)
             for _, config, march, signoff in parsed])
        # Coalesced items share one future; fan results back out by
        # index so every requested item gets exactly one line.
        futures: dict = {}  # id(future) -> (future, [indexes])
        for (index, _c, _m, _s), (tag, value) in zip(parsed,
                                                     outcomes):
            if tag == "future":
                entry = futures.setdefault(id(value), (value, []))
                entry[1].append(index)
                continue
            line = {"index": index, "status": "failed",
                    "error": str(value)}
            if isinstance(value, ServiceUnavailable):
                line["kind"] = "unavailable"
                line["reason"] = value.reason
                line["retry_after_s"] = value.retry_after_s
            else:
                line["kind"] = "config"
            error_lines.append(line)
        # HTTP/1.0 stream-until-close: no Content-Length; the client
        # reads NDJSON lines until the done sentinel.
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("X-Served-By", self.macro_server.role)
        self.end_headers()
        ok = failed = 0
        try:
            for line in error_lines:
                failed += 1
                self._write_line(line)
            for future in as_completed(
                    [f for f, _ in futures.values()]):
                _, indexes = futures[id(future)]
                try:
                    response = future.result()
                except Exception as error:
                    kind = ("crashed" if isinstance(error, BuildCrashed)
                            else "signoff"
                            if isinstance(error, SignoffError)
                            else "unavailable"
                            if isinstance(error, ServiceUnavailable)
                            else "build")
                    for index in indexes:
                        failed += 1
                        self._write_line({
                            "index": index, "status": "failed",
                            "kind": kind,
                            "error": f"{type(error).__name__}: "
                                     f"{error}"})
                else:
                    payload = compile_payload(response, include)
                    for index in indexes:
                        ok += 1
                        self._write_line({"index": index,
                                          "status": "ok", **payload})
            self._write_line({"done": True, "items": len(items),
                              "ok": ok, "failed": failed})
        except (BrokenPipeError, ConnectionResetError):
            pass  # the client went away mid-stream; nothing to do

    def _write_line(self, record: dict) -> None:
        self.wfile.write(
            json.dumps(record, sort_keys=True).encode("utf-8") + b"\n")
        self.wfile.flush()

    def _handle_artifact(self) -> None:
        """``GET /artifact/<key>/<name>``: raw bytes from the store."""
        self.macro_server.count_endpoint("artifact")
        parts = self.path.split("/", 3)  # ["", "artifact", key, name]
        if len(parts) != 4 or not parts[2] or not parts[3]:
            self._reply(400, {"error": "use /artifact/<key>/<name>"})
            return
        key, name = parts[2], parts[3]
        store = self.macro_server.store
        artifacts = store.get(key) if store is not None else None
        if artifacts is None or name not in artifacts:
            self._reply(404, {"error": f"no artifact {name!r} under "
                                       f"key {key[:16]}"})
            return
        data = artifacts[name]
        self.send_response(200)
        self.send_header("Content-Type", "application/octet-stream")
        self.send_header("Content-Length", str(len(data)))
        self.send_header("X-Served-By", self.macro_server.role)
        self.end_headers()
        self.wfile.write(data)


def make_http_server(macro_server: MacroServer, host: str = "127.0.0.1",
                     port: int = 0, verbose: bool = False,
                     max_requests: Optional[int] = None,
                     ) -> ThreadingHTTPServer:
    """A bound (not yet serving) HTTP front-end; port 0 picks a free
    one (``server.server_address`` reports the choice).

    ``max_requests`` stops the serve loop after that many ``/compile``
    requests — the hook CI smoke jobs use to run a bounded session.
    """
    httpd = ThreadingHTTPServer((host, port), _Handler)
    httpd.macro_server = macro_server  # type: ignore[attr-defined]
    httpd.verbose = verbose  # type: ignore[attr-defined]
    httpd.max_requests = max_requests  # type: ignore[attr-defined]
    httpd.served = 0  # type: ignore[attr-defined]
    httpd.count_lock = threading.Lock()  # type: ignore[attr-defined]
    httpd.daemon_threads = True
    return httpd


def serve_forever_in_thread(httpd: ThreadingHTTPServer
                            ) -> threading.Thread:
    """Run the HTTP loop on a daemon thread (tests, embedded use)."""
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    return thread


class ServiceClient:
    """Stdlib HTTP client for a running macro server.

    The small helper the campaign runtime and benchmarks use; every
    method opens one connection (the server is thread-per-request, so
    keep-alive buys nothing at this scale).

    A 503 (backpressure, drain, replay) is retried up to ``retries``
    times, sleeping the server's ``Retry-After`` advice — capped at
    ``backoff_cap_s`` and jittered up to +25% so a herd of rejected
    clients does not return in lockstep — before giving up with
    :class:`ServiceUnavailable`.  A **refused or reset connection**
    (server restarting, primary killed) is retried with the same
    bounded jittered backoff, rotating through ``failover`` endpoints
    so a promoted standby picks up the traffic transparently.
    ``retries=0`` restores fail-fast.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8080,
                 timeout_s: float = 600.0, retries: int = 3,
                 backoff_cap_s: float = 5.0,
                 failover: Sequence[Tuple[str, int]] = ()) -> None:
        if retries < 0:
            raise ConfigError("retries must be >= 0")
        if backoff_cap_s <= 0:
            raise ConfigError("backoff_cap_s must be positive")
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_cap_s = backoff_cap_s
        self.endpoints = [(host, port)] + [
            (str(h), int(p)) for h, p in failover]
        self._endpoint_index = 0

    def _open_stream(self, method: str, path: str,
                     body: Optional[dict] = None):
        """Issue one request; return ``(status, reply, connection,
        headers)`` with the response body left unread (the batch
        endpoint streams it).  Connection-level failures — refused,
        reset, broken pipe — rotate to the next endpoint and retry
        with bounded jittered backoff; exhaustion raises
        :class:`ServiceUnavailable` (reason ``unreachable``).
        """
        last_error: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            endpoint = self.endpoints[self._endpoint_index]
            try:
                return self._attempt(endpoint, method, path, body)
            except (ConnectionResetError, ConnectionRefusedError,
                    BrokenPipeError) as error:
                last_error = error
                # A dead endpoint stays dead for a while; try the
                # next one first on the following attempt.
                self._endpoint_index = (
                    (self._endpoint_index + 1) % len(self.endpoints))
                if attempt >= self.retries:
                    break
                delay = min(0.05 * (2 ** attempt), self.backoff_cap_s)
                time.sleep(delay + random.uniform(0.0, 0.25 * delay))
        raise ServiceUnavailable(
            f"no endpoint answered {method} {path} after "
            f"{self.retries + 1} attempt(s) across "
            f"{len(self.endpoints)} endpoint(s): {last_error}",
            reason="unreachable")

    def _attempt(self, endpoint: Tuple[str, int], method: str,
                 path: str, body: Optional[dict]):
        """One connection attempt to one endpoint; connection-level
        errors propagate for :meth:`_open_stream` to retry."""
        payload = None
        headers = {}
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        connection = HTTPConnection(endpoint[0], endpoint[1],
                                    timeout=self.timeout_s)
        try:
            connection.request(method, path, body=payload,
                               headers=headers)
            reply = connection.getresponse()
        except Exception:
            connection.close()
            raise
        return (reply.status, reply, connection,
                dict(reply.headers.items()))

    def _request(self, method: str, path: str,
                 body: Optional[dict] = None,
                 ) -> Tuple[int, dict, dict]:
        status, reply, connection, headers = self._open_stream(
            method, path, body)
        try:
            return (status, json.loads(reply.read() or b"{}"),
                    headers)
        finally:
            connection.close()

    def _backoff_s(self, headers: dict, payload: dict) -> float:
        """The server's Retry-After advice, capped and jittered."""
        try:
            advice = float(headers.get(
                "Retry-After", payload.get("retry_after_s", 1.0)))
        except (TypeError, ValueError):
            advice = 1.0
        delay = max(0.0, min(advice, self.backoff_cap_s))
        return delay + random.uniform(0.0, 0.25 * delay)

    def compile(self, config: RamConfig, march: str = "IFA-9",
                signoff: Optional[str] = None,
                include: Tuple[str, ...] = ()) -> dict:
        """Compile via the server; returns the JSON payload.

        Raises:
            ServiceUnavailable: 503 with every retry exhausted.
            ConfigError: on 400.
            ReproError: on any other non-200.
        """
        body = {
            "config": config.to_dict(),
            "march": march,
            "signoff": signoff,
            "include": list(include),
        }
        for attempt in range(self.retries + 1):
            status, payload, headers = self._request(
                "POST", "/compile", body)
            if status != 503 or attempt >= self.retries:
                break
            time.sleep(self._backoff_s(headers, payload))
        if status == 200:
            return payload
        message = payload.get("error", f"HTTP {status}")
        if status == 503:
            raise ServiceUnavailable(
                message, reason=payload.get("reason", "saturated"),
                retry_after_s=float(payload.get("retry_after_s", 1.0)))
        if status == 400:
            raise ConfigError(message)
        raise ReproError(message)

    def compile_batch(self, configs: Iterable[RamConfig],
                      march: str = "IFA-9",
                      signoff: Optional[str] = None,
                      include: Tuple[str, ...] = (),
                      ) -> Iterator[dict]:
        """Submit a batch; yields per-item result dicts as they land.

        The request is issued eagerly (413/400/503 raise here); the
        returned iterator then yields one dict per item, in completion
        order, each carrying ``index`` and ``status`` (``"ok"`` lines
        have the full compile payload; ``"failed"`` lines have
        ``kind`` + ``error``).  The server's ``done`` sentinel is
        consumed, not yielded.  A stream that ends *without* the
        sentinel (primary killed mid-batch) raises
        :class:`ServiceUnavailable` (reason ``interrupted``) — every
        admitted item is WAL-journaled and content-addressed, so
        resubmitting the same batch is the correct, idempotent move.
        """
        body = {
            "items": [{"config": config.to_dict(), "march": march,
                       "signoff": signoff} for config in configs],
            "include": list(include),
        }
        for attempt in range(self.retries + 1):
            status, reply, connection, headers = self._open_stream(
                "POST", "/compile_batch", body)
            if status != 503 or attempt >= self.retries:
                break
            payload = json.loads(reply.read() or b"{}")
            connection.close()
            time.sleep(self._backoff_s(headers, payload))
        if status != 200:
            try:
                payload = json.loads(reply.read() or b"{}")
            finally:
                connection.close()
            message = payload.get("error", f"HTTP {status}")
            if status == 503:
                raise ServiceUnavailable(
                    message,
                    reason=payload.get("reason", "saturated"),
                    retry_after_s=float(
                        payload.get("retry_after_s", 1.0)))
            if status in (400, 413):
                raise ConfigError(message)
            raise ReproError(message)
        return self._consume_batch(reply, connection)

    @staticmethod
    def _consume_batch(reply, connection) -> Iterator[dict]:
        done = False
        try:
            try:
                for raw in reply:
                    line = raw.strip()
                    if not line:
                        continue
                    record = json.loads(line)
                    if record.get("done"):
                        done = True
                        break
                    yield record
            except (ConnectionError, TimeoutError, OSError):
                pass  # a torn stream; handled as not-done below
            if not done:
                raise ServiceUnavailable(
                    "the batch stream ended before the server's done "
                    "record (server killed mid-batch?); resubmit — "
                    "admitted items are journaled and idempotent",
                    reason="interrupted")
        finally:
            connection.close()

    def drain(self) -> dict:
        """Ask the server to drain + hand off its lease; 202 payload."""
        status, payload, _ = self._request("POST", "/admin/drain")
        if status not in (200, 202):
            raise ReproError(payload.get("error", f"HTTP {status}"))
        return payload

    def fetch_artifact(self, key: str, name: str) -> bytes:
        """One artifact's raw bytes via ``GET /artifact/…``."""
        status, reply, connection, _ = self._open_stream(
            "GET", f"/artifact/{key}/{name}")
        try:
            data = reply.read()
        finally:
            connection.close()
        if status != 200:
            try:
                message = json.loads(data or b"{}").get(
                    "error", f"HTTP {status}")
            except json.JSONDecodeError:
                message = f"HTTP {status}"
            if status == 404:
                raise ConfigError(message)
            raise ReproError(message)
        return data

    def artifact(self, payload: dict, name: str) -> bytes:
        """Decode one ``include``-requested artifact from a compile
        payload."""
        try:
            return base64.b64decode(payload["content"][name])
        except KeyError:
            raise ConfigError(
                f"artifact {name!r} was not included in the response "
                f"(pass it via include=)") from None

    def stats(self) -> dict:
        status, payload, _ = self._request("GET", "/stats")
        if status != 200:
            raise ReproError(payload.get("error", f"HTTP {status}"))
        return payload

    def healthz(self) -> dict:
        status, payload, _ = self._request("GET", "/healthz")
        if status != 200:
            raise ReproError(payload.get("error", f"HTTP {status}"))
        return payload

    def readyz(self) -> dict:
        """Readiness payload; ``{"status": "ready"}`` once WAL replay
        is done, the 503 body (with ``reason``) while it is not."""
        _, payload, _ = self._request("GET", "/readyz")
        return payload
