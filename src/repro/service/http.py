"""HTTP transport for the macro server, plus the client helper.

The wire format is deliberately small and stdlib-only:

* ``POST /compile`` — body ``{"config": {...}, "march": "IFA-9",
  "signoff": null, "include": ["macro.cif", ...]}``.  Responds with
  the bundle manifest (per-artifact sha256 + size), the parsed
  datasheet/area payloads, and — for names listed in ``include`` —
  the artifact bytes, base64-encoded.
* ``GET /stats`` — the server's JSON metrics (latency percentiles,
  hit/build/coalesce/reject counts, store + stage-cache stats).
* ``GET /healthz`` — liveness + drain state.
* ``GET /readyz`` — readiness: 503 while the server is still
  replaying its WAL backlog from a crashed predecessor (it *serves*
  during replay — readiness is for load balancers deciding where to
  send fresh traffic).

Status codes: 400 for a bad request (unknown config field, bad march
notation — anything :class:`~repro.core.errors.ConfigError`), 422 for
a build that failed strict signoff, 503 when backpressure or draining
rejects the request, 500 for the unexpected.  Every 503 carries a
``Retry-After`` header (seconds); :class:`ServiceClient` honors it
with bounded, jittered backoff instead of failing fast.

:class:`ServiceClient` is the matching stdlib client the campaign
runtime and the benchmarks use.
"""

from __future__ import annotations

import base64
import json
import random
import threading
import time
from http.client import HTTPConnection
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from repro.bist.march import MarchTest, parse_march
from repro.bist import ALL_TESTS
from repro.core.config import RamConfig
from repro.core.errors import (
    ConfigError,
    ReproError,
    ServiceUnavailable,
    SignoffError,
)
from repro.service.server import CompileResponse, MacroServer

_MARCHES = {t.name: t for t in ALL_TESTS}


def resolve_march(name: str) -> MarchTest:
    """A known march by name, or user notation parsed on the spot."""
    if name in _MARCHES:
        return _MARCHES[name]
    return parse_march("custom", name)


def compile_payload(response: CompileResponse,
                    include: Tuple[str, ...] = ()) -> dict:
    """The JSON body for one successful compile."""
    payload = {
        "key": response.key,
        "cached": response.cached,
        "elapsed_s": round(response.elapsed_s, 6),
        "artifacts": response.manifest(),
        "datasheet": json.loads(
            response.artifacts["datasheet.json"].decode("utf-8")),
        "area": json.loads(
            response.artifacts["area.json"].decode("utf-8")),
    }
    if "signoff.json" in response.artifacts:
        payload["signoff"] = json.loads(
            response.artifacts["signoff.json"].decode("utf-8"))
    content = {}
    for name in include:
        if name in response.artifacts:
            content[name] = base64.b64encode(
                response.artifacts[name]).decode("ascii")
    if content:
        payload["content"] = content
    return payload


class _Handler(BaseHTTPRequestHandler):
    """Thin HTTP glue over the owning :class:`MacroServer`."""

    server_version = "bisramgen-macroserver/1.0"

    # Set by make_http_server on the ThreadingHTTPServer instance.
    @property
    def macro_server(self) -> MacroServer:
        return self.server.macro_server  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib name
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _reply(self, status: int, payload: dict,
               headers: Optional[dict] = None) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _reply_unavailable(self, error: ServiceUnavailable) -> None:
        self._reply(503, {
            "error": str(error),
            "reason": error.reason,
            "retry_after_s": error.retry_after_s,
        }, headers={"Retry-After": f"{error.retry_after_s:g}"})

    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        if self.path == "/stats":
            self._reply(200, self.macro_server.stats())
        elif self.path == "/healthz":
            self._reply(200, {
                "status": "draining" if self.macro_server.draining
                else "ok",
            })
        elif self.path == "/readyz":
            if self.macro_server.ready:
                self._reply(200, {"status": "ready"})
            else:
                self._reply_unavailable(ServiceUnavailable(
                    "still replaying the write-ahead log",
                    reason="not_ready", retry_after_s=2.0))
        else:
            self._reply(404, {"error": f"no such endpoint {self.path}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        if self.path != "/compile":
            self._reply(404, {"error": f"no such endpoint {self.path}"})
            return
        try:
            self._handle_compile()
        finally:
            self._count_request()

    def _count_request(self) -> None:
        """Stop the serve loop after ``max_requests`` compiles (CI)."""
        limit = getattr(self.server, "max_requests", None)
        if limit is None:
            return
        with self.server.count_lock:  # type: ignore[attr-defined]
            self.server.served += 1  # type: ignore[attr-defined]
            done = self.server.served >= limit  # type: ignore
        if done:
            # shutdown() blocks until serve_forever returns; never call
            # it from the loop's own thread — hand it to a helper.
            threading.Thread(target=self.server.shutdown,
                             daemon=True).start()

    def _handle_compile(self) -> None:
        try:
            length = int(self.headers.get("Content-Length", 0))
            request = json.loads(self.rfile.read(length) or b"{}")
            config = RamConfig.from_dict(request.get("config", {}))
            march = resolve_march(request.get("march", "IFA-9"))
            signoff = request.get("signoff")
            include = tuple(request.get("include", ()))
            response = self.macro_server.compile(
                config, march, signoff=signoff)
        except ServiceUnavailable as error:
            self._reply_unavailable(error)
        except SignoffError as error:
            self._reply(422, {"error": str(error),
                              "failure_class": error.failure_class,
                              "report": error.report})
        except (ConfigError, ReproError, ValueError, KeyError,
                json.JSONDecodeError) as error:
            self._reply(400, {"error": f"{type(error).__name__}: "
                                       f"{error}"})
        except Exception as error:  # pragma: no cover - defensive
            self._reply(500, {"error": f"{type(error).__name__}: "
                                       f"{error}"})
        else:
            self._reply(200, compile_payload(response, include))


def make_http_server(macro_server: MacroServer, host: str = "127.0.0.1",
                     port: int = 0, verbose: bool = False,
                     max_requests: Optional[int] = None,
                     ) -> ThreadingHTTPServer:
    """A bound (not yet serving) HTTP front-end; port 0 picks a free
    one (``server.server_address`` reports the choice).

    ``max_requests`` stops the serve loop after that many ``/compile``
    requests — the hook CI smoke jobs use to run a bounded session.
    """
    httpd = ThreadingHTTPServer((host, port), _Handler)
    httpd.macro_server = macro_server  # type: ignore[attr-defined]
    httpd.verbose = verbose  # type: ignore[attr-defined]
    httpd.max_requests = max_requests  # type: ignore[attr-defined]
    httpd.served = 0  # type: ignore[attr-defined]
    httpd.count_lock = threading.Lock()  # type: ignore[attr-defined]
    httpd.daemon_threads = True
    return httpd


def serve_forever_in_thread(httpd: ThreadingHTTPServer
                            ) -> threading.Thread:
    """Run the HTTP loop on a daemon thread (tests, embedded use)."""
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    return thread


class ServiceClient:
    """Stdlib HTTP client for a running macro server.

    The small helper the campaign runtime and benchmarks use; every
    method opens one connection (the server is thread-per-request, so
    keep-alive buys nothing at this scale).

    A 503 (backpressure, drain, replay) is retried up to ``retries``
    times, sleeping the server's ``Retry-After`` advice — capped at
    ``backoff_cap_s`` and jittered up to +25% so a herd of rejected
    clients does not return in lockstep — before giving up with
    :class:`ServiceUnavailable`.  ``retries=0`` restores fail-fast.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8080,
                 timeout_s: float = 600.0, retries: int = 3,
                 backoff_cap_s: float = 5.0) -> None:
        if retries < 0:
            raise ConfigError("retries must be >= 0")
        if backoff_cap_s <= 0:
            raise ConfigError("backoff_cap_s must be positive")
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_cap_s = backoff_cap_s

    def _request(self, method: str, path: str,
                 body: Optional[dict] = None,
                 ) -> Tuple[int, dict, dict]:
        connection = HTTPConnection(self.host, self.port,
                                    timeout=self.timeout_s)
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=payload,
                               headers=headers)
            reply = connection.getresponse()
            return (reply.status, json.loads(reply.read() or b"{}"),
                    dict(reply.headers.items()))
        finally:
            connection.close()

    def _backoff_s(self, headers: dict, payload: dict) -> float:
        """The server's Retry-After advice, capped and jittered."""
        try:
            advice = float(headers.get(
                "Retry-After", payload.get("retry_after_s", 1.0)))
        except (TypeError, ValueError):
            advice = 1.0
        delay = max(0.0, min(advice, self.backoff_cap_s))
        return delay + random.uniform(0.0, 0.25 * delay)

    def compile(self, config: RamConfig, march: str = "IFA-9",
                signoff: Optional[str] = None,
                include: Tuple[str, ...] = ()) -> dict:
        """Compile via the server; returns the JSON payload.

        Raises:
            ServiceUnavailable: 503 with every retry exhausted.
            ConfigError: on 400.
            ReproError: on any other non-200.
        """
        body = {
            "config": config.to_dict(),
            "march": march,
            "signoff": signoff,
            "include": list(include),
        }
        for attempt in range(self.retries + 1):
            status, payload, headers = self._request(
                "POST", "/compile", body)
            if status != 503 or attempt >= self.retries:
                break
            time.sleep(self._backoff_s(headers, payload))
        if status == 200:
            return payload
        message = payload.get("error", f"HTTP {status}")
        if status == 503:
            raise ServiceUnavailable(
                message, reason=payload.get("reason", "saturated"),
                retry_after_s=float(payload.get("retry_after_s", 1.0)))
        if status == 400:
            raise ConfigError(message)
        raise ReproError(message)

    def artifact(self, payload: dict, name: str) -> bytes:
        """Decode one ``include``-requested artifact from a compile
        payload."""
        try:
            return base64.b64decode(payload["content"][name])
        except KeyError:
            raise ConfigError(
                f"artifact {name!r} was not included in the response "
                f"(pass it via include=)") from None

    def stats(self) -> dict:
        status, payload, _ = self._request("GET", "/stats")
        if status != 200:
            raise ReproError(payload.get("error", f"HTTP {status}"))
        return payload

    def healthz(self) -> dict:
        status, payload, _ = self._request("GET", "/healthz")
        if status != 200:
            raise ReproError(payload.get("error", f"HTTP {status}"))
        return payload

    def readyz(self) -> dict:
        """Readiness payload; ``{"status": "ready"}`` once WAL replay
        is done, the 503 body (with ``reason``) while it is not."""
        _, payload, _ = self._request("GET", "/readyz")
        return payload
