"""Flat transistor-level netlists.

Nodes are plain strings; ``GND`` ("0") is the reference.  Devices are
immutable records.  The netlist offers convenience constructors for the
gate structures the RAM circuitry is made of (inverters, NAND/NOR
pull-up/pull-down stacks), which keeps the leaf-cell generators short.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.tech.spice_params import MosParams

GND = "0"


@dataclass(frozen=True)
class Mosfet:
    """A MOSFET instance: terminals plus drawn W/L in microns."""

    name: str
    drain: str
    gate: str
    source: str
    params: MosParams
    w_um: float
    l_um: float

    def __post_init__(self) -> None:
        if self.w_um <= 0 or self.l_um <= 0:
            raise ValueError(f"{self.name}: W and L must be positive")
        if self.l_um < self.params.min_l_um - 1e-12:
            raise ValueError(
                f"{self.name}: L={self.l_um} um below process minimum "
                f"{self.params.min_l_um} um"
            )

    def gate_cap(self) -> float:
        """Lumped gate capacitance in farads (Cox * W * L)."""
        return self.params.cox * (self.w_um * 1e-6) * (self.l_um * 1e-6)

    def diff_cap(self) -> float:
        """Per-terminal source/drain junction capacitance in farads.

        Uses a fixed diffusion extension of 3 lambda ~ 1.5 L for area.
        """
        ext = 1.5 * self.l_um * 1e-6
        area = (self.w_um * 1e-6) * ext
        perim = 2 * (self.w_um * 1e-6 + ext)
        return self.params.cj * area + self.params.cjsw * perim


@dataclass(frozen=True)
class Resistor:
    name: str
    a: str
    b: str
    ohms: float

    def __post_init__(self) -> None:
        if self.ohms <= 0:
            raise ValueError(f"{self.name}: resistance must be positive")


@dataclass(frozen=True)
class Capacitor:
    name: str
    a: str
    b: str
    farads: float

    def __post_init__(self) -> None:
        if self.farads <= 0:
            raise ValueError(f"{self.name}: capacitance must be positive")


@dataclass(frozen=True)
class VoltageSource:
    """A source pinning a node; ``waveform`` maps time (s) to volts.

    A constant source stores a float; a time-varying source stores a
    callable (e.g. :class:`repro.spice.waveforms.Pwl`).
    """

    name: str
    node: str
    waveform: object  # float volts or callable time->volts

    def volts(self, t: float) -> float:
        if callable(self.waveform):
            return float(self.waveform(t))
        return float(self.waveform)


class Netlist:
    """A mutable flat netlist."""

    def __init__(self, name: str = "netlist") -> None:
        self.name = name
        self.mosfets: List[Mosfet] = []
        self.resistors: List[Resistor] = []
        self.capacitors: List[Capacitor] = []
        self.sources: List[VoltageSource] = []
        self._counter = itertools.count()

    # -- device addition ---------------------------------------------------

    def _auto(self, prefix: str) -> str:
        return f"{prefix}{next(self._counter)}"

    def add_mosfet(
        self,
        drain: str,
        gate: str,
        source: str,
        params: MosParams,
        w_um: float,
        l_um: Optional[float] = None,
        name: Optional[str] = None,
    ) -> Mosfet:
        m = Mosfet(
            name=name or self._auto("M"),
            drain=drain,
            gate=gate,
            source=source,
            params=params,
            w_um=w_um,
            l_um=l_um if l_um is not None else params.min_l_um,
        )
        self.mosfets.append(m)
        return m

    def add_resistor(self, a: str, b: str, ohms: float,
                     name: Optional[str] = None) -> Resistor:
        r = Resistor(name or self._auto("R"), a, b, ohms)
        self.resistors.append(r)
        return r

    def add_capacitor(self, a: str, b: str, farads: float,
                      name: Optional[str] = None) -> Capacitor:
        c = Capacitor(name or self._auto("C"), a, b, farads)
        self.capacitors.append(c)
        return c

    def add_source(self, node: str, waveform, name: Optional[str] = None
                   ) -> VoltageSource:
        v = VoltageSource(name or self._auto("V"), node, waveform)
        self.sources.append(v)
        return v

    # -- gate-level helpers --------------------------------------------------

    def add_inverter(
        self,
        inp: str,
        out: str,
        nmos: MosParams,
        pmos: MosParams,
        wn_um: float,
        wp_um: float,
        vdd_node: str = "vdd",
    ) -> Tuple[Mosfet, Mosfet]:
        """A CMOS inverter between ``vdd_node`` and GND."""
        mp = self.add_mosfet(out, inp, vdd_node, pmos, wp_um)
        mn = self.add_mosfet(out, inp, GND, nmos, wn_um)
        return mn, mp

    def add_nand(
        self,
        inputs: Sequence[str],
        out: str,
        nmos: MosParams,
        pmos: MosParams,
        wn_um: float,
        wp_um: float,
        vdd_node: str = "vdd",
    ) -> None:
        """An n-input CMOS NAND: series NMOS stack, parallel PMOS."""
        if not inputs:
            raise ValueError("NAND needs at least one input")
        node = out
        for i, inp in enumerate(inputs):
            lower = GND if i == len(inputs) - 1 else self._auto("n_nand")
            self.add_mosfet(node, inp, lower, nmos, wn_um)
            node = lower
        for inp in inputs:
            self.add_mosfet(out, inp, vdd_node, pmos, wp_um)

    def add_nor(
        self,
        inputs: Sequence[str],
        out: str,
        nmos: MosParams,
        pmos: MosParams,
        wn_um: float,
        wp_um: float,
        vdd_node: str = "vdd",
    ) -> None:
        """An n-input CMOS NOR: parallel NMOS, series PMOS stack."""
        if not inputs:
            raise ValueError("NOR needs at least one input")
        for inp in inputs:
            self.add_mosfet(out, inp, GND, nmos, wn_um)
        node = "vdd" if vdd_node == "vdd" else vdd_node
        node = vdd_node
        for i, inp in enumerate(inputs):
            lower = out if i == len(inputs) - 1 else self._auto("n_nor")
            self.add_mosfet(lower, inp, node, pmos, wp_um)
            node = lower

    # -- queries --------------------------------------------------------------

    def nodes(self) -> Set[str]:
        """Every node name referenced by any device."""
        names: Set[str] = set()
        for m in self.mosfets:
            names.update((m.drain, m.gate, m.source))
        for r in self.resistors:
            names.update((r.a, r.b))
        for c in self.capacitors:
            names.update((c.a, c.b))
        for v in self.sources:
            names.add(v.node)
        return names

    def device_count(self) -> int:
        return len(self.mosfets) + len(self.resistors) + len(self.capacitors)

    def node_capacitance(self, vdd_node: str = "vdd") -> Dict[str, float]:
        """Total lumped capacitance to ground seen at each node.

        Gate caps land on gates; diffusion caps land on drain and source;
        explicit caps land on both terminals (caps to a supply count as
        caps to ground for small-signal loading purposes).
        """
        caps: Dict[str, float] = {}

        def bump(node: str, f: float) -> None:
            caps[node] = caps.get(node, 0.0) + f

        for m in self.mosfets:
            bump(m.gate, m.gate_cap())
            bump(m.drain, m.diff_cap())
            bump(m.source, m.diff_cap())
        for c in self.capacitors:
            bump(c.a, c.farads)
            bump(c.b, c.farads)
        return caps

    def __repr__(self) -> str:
        return (
            f"Netlist({self.name!r}, M={len(self.mosfets)}, "
            f"R={len(self.resistors)}, C={len(self.capacitors)}, "
            f"V={len(self.sources)})"
        )
