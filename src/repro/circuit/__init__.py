"""Transistor-level circuit representation.

The compiler keeps a netlist view alongside the layout view: leaf-cell
generators emit both.  The netlist feeds the :mod:`repro.spice` engine
for the two SPICE-driven features of the paper — automatic P/N sizing so
critical gates have balanced rise and fall times, and extraction-based
extrapolation of timing/area/power guarantees before the full layout is
built.
"""

from repro.circuit.netlist import (
    Netlist,
    Mosfet,
    Resistor,
    Capacitor,
    VoltageSource,
    GND,
)
from repro.circuit.mosfet import mosfet_current
from repro.circuit.sizing import balance_inverter, size_for_drive
from repro.circuit.extract import extract_parasitics
from repro.circuit.spice_export import write_spice, export_spice, read_spice

__all__ = [
    "Netlist",
    "Mosfet",
    "Resistor",
    "Capacitor",
    "VoltageSource",
    "GND",
    "mosfet_current",
    "balance_inverter",
    "size_for_drive",
    "extract_parasitics",
    "write_spice",
    "export_spice",
    "read_spice",
]
