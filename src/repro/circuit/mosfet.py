"""Level-1 (Shichman-Hodges) MOSFET current evaluation.

The drain current model behind both the transient engine and the
analytic delay estimates.  Level 1 is the model of choice for sizing
heuristics: it is monotone, cheap, and its errors cancel in the
rise/fall *ratio* the sizing loop actually optimises.
"""

from __future__ import annotations

from repro.tech.spice_params import MosParams


def mosfet_current(
    params: MosParams, vg: float, vd: float, vs: float, w_um: float, l_um: float
) -> float:
    """Drain current (amps) flowing *into* the drain terminal.

    Handles source/drain symmetry: terminals are swapped so the level-1
    equations always see ``vds >= 0`` for NMOS (``<= 0`` for PMOS), and
    the sign of the returned current follows the original orientation.
    """
    if params.polarity == "nmos":
        return _nmos_like(params, vg, vd, vs, w_um, l_um, sign=1.0)
    # A PMOS is an NMOS in mirrored voltages.
    return -_nmos_like(
        params_as_n(params), -vg, -vd, -vs, w_um, l_um, sign=1.0
    )


def params_as_n(p: MosParams) -> MosParams:
    """View PMOS parameters through the NMOS equations (|vto|, same kp)."""
    if p.polarity == "nmos":
        return p
    return MosParams(
        polarity="nmos",
        vto=-p.vto,
        kp=p.kp,
        lambda_=p.lambda_,
        cox=p.cox,
        cj=p.cj,
        cjsw=p.cjsw,
        min_l_um=p.min_l_um,
    )


def _nmos_like(
    params: MosParams,
    vg: float,
    vd: float,
    vs: float,
    w_um: float,
    l_um: float,
    sign: float,
) -> float:
    # Exploit source/drain symmetry: conduct from the higher terminal to
    # the lower one.
    flipped = False
    if vd < vs:
        vd, vs = vs, vd
        flipped = True
    vgs = vg - vs
    vds = vd - vs
    vt = params.vto
    if vgs <= vt:
        ids = 0.0
    else:
        beta = params.beta(w_um, l_um)
        vov = vgs - vt
        if vds < vov:
            ids = beta * (vov - vds / 2.0) * vds
        else:
            ids = 0.5 * beta * vov * vov * (1.0 + params.lambda_ * vds)
    if flipped:
        ids = -ids
    return sign * ids


def saturation_current(params: MosParams, vdd: float, w_um: float,
                       l_um: float) -> float:
    """On-current with full gate drive, used by first-order delay models."""
    p = params_as_n(params)
    vov = vdd - p.vto
    if vov <= 0:
        return 0.0
    return 0.5 * p.beta(w_um, l_um) * vov * vov


def effective_resistance(params: MosParams, vdd: float, w_um: float,
                         l_um: float) -> float:
    """Switch-model on-resistance ``~ vdd / Idsat`` in ohms.

    The classic RC delay approximation: a conducting device is a
    resistor of this value.  Used for TLB match-line and decoder delay
    estimates where a transient run per configuration would be wasteful.
    """
    ion = saturation_current(params, vdd, w_um, l_um)
    if ion <= 0.0:
        return float("inf")
    # The 0.75 factor calibrates the switch model against the transient
    # engine for a single inverter driving a fixed load.
    return 0.75 * vdd / ion
