"""Parasitic extraction from layout geometry.

The compiler "can generate simple leaf cells ahead of time and extract
and simulate them, thereby extrapolating and providing timing, area, and
power guarantees for the overall system before designing the overall
layout".  This module implements the extraction half: given a cell, it
estimates the wire resistance and capacitance per conducting layer from
the drawn geometry, producing the lumped parasitics the timing models
attach to bit lines, word lines, and TLB match lines.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict

from repro.layout.cell import Cell
from repro.tech.process import Process


@dataclass(frozen=True)
class WireParasitics:
    """Lumped parasitics of one layer's wiring in a cell."""

    layer: str
    length_um: float
    resistance_ohm: float
    capacitance_f: float


def extract_parasitics(cell: Cell, process: Process) -> Dict[str, WireParasitics]:
    """Per-layer lumped RC of all drawn conductor geometry in ``cell``.

    Wire length of a rectangle is its long dimension; resistance uses the
    squares count (length/width * sheet rho), capacitance uses the
    per-micron wire capacitance of the process scaled by a per-layer
    factor (upper metals are farther from the substrate).
    """
    length_um: Dict[str, float] = defaultdict(float)
    squares: Dict[str, float] = defaultdict(float)
    conductor_names = {l.name for l in process.layers.conductors()}
    for layer, rect in cell.flatten():
        if layer not in conductor_names or rect.area == 0:
            continue
        long_cu = max(rect.width, rect.height)
        short_cu = min(rect.width, rect.height)
        if short_cu == 0:
            continue
        length_um[layer] += long_cu / 100.0
        squares[layer] += long_cu / short_cu

    cap_scale = {"metal1": 1.0, "metal2": 0.8, "metal3": 0.65,
                 "poly": 1.6, "ndiff": 2.0, "pdiff": 2.0}
    rho_scale = {"metal1": 1.0, "metal2": 1.0, "metal3": 0.7,
                 "poly": 300.0, "ndiff": 500.0, "pdiff": 700.0}
    out = {}
    for layer, total_len in length_um.items():
        out[layer] = WireParasitics(
            layer=layer,
            length_um=total_len,
            resistance_ohm=squares[layer]
            * process.wire_r_ohm_sq
            * rho_scale.get(layer, 1.0),
            capacitance_f=total_len
            * process.wire_c_af_um
            * cap_scale.get(layer, 1.0)
            * 1e-18,
        )
    return out


def bitline_parasitics(process: Process, rows: int,
                       cell_height_cu: int) -> WireParasitics:
    """Lumped RC of one bit line spanning ``rows`` cells.

    Used by the access-time model without building the array layout: the
    bit line is a metal2 wire of length rows * cell height plus one
    diffusion junction per attached access transistor.
    """
    if rows <= 0:
        raise ValueError("rows must be positive")
    length_um = rows * cell_height_cu / 100.0
    width_um = process.rules.min_width("metal2") / 100.0
    res = (length_um / width_um) * process.wire_r_ohm_sq
    wire_cap = length_um * process.wire_c_af_um * 0.8e-18
    junction_cap = rows * process.nmos.cj * (
        (3 * process.feature_um * 1e-6) * (1.5 * process.feature_um * 1e-6)
    )
    return WireParasitics(
        layer="metal2",
        length_um=length_um,
        resistance_ohm=res,
        capacitance_f=wire_cap + junction_cap,
    )
