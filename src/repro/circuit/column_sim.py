"""Column datapath simulation: the generated netlists, wired together.

Builds the transistor netlist of one bit-line column exactly as the
layout wires it — ``rows`` 6T cells sharing a bl/blb pair, the
precharge/equalise cell on top, and the current-mode sense amplifier at
the bottom — and simulates a complete read access:

1. precharge phase: pcb low, word lines low → bit lines equalise high,
2. access phase: precharge off, one word line rises → the selected
   cell develops a differential,
3. sense phase: sense-enable rises → the latch resolves to full swing.

This is the compiler's own "extract and simulate them, thereby
extrapolating and providing timing ... guarantees" loop closed at the
column level: the measured access time cross-checks the datasheet's
staged model, and reading back the *written* value through the real
cell/senseamp netlists is the strongest functional check the circuit
layer offers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.cells.precharge import precharge_netlist
from repro.cells.senseamp import senseamp_netlist
from repro.cells.sram6t import sram6t_netlist
from repro.circuit.extract import bitline_parasitics
from repro.circuit.netlist import GND, Netlist
from repro.spice.engine import TransientEngine, TransientResult
from repro.spice.waveforms import Pwl
from repro.tech.process import Process

#: Lambda height of the bit cell — used for the bit-line wire load.
_CELL_HEIGHT_LAMBDA = 48


def build_column_netlist(
    process: Process,
    rows: int,
    gate_size: int = 1,
) -> Netlist:
    """One column: ``rows`` cells + precharge + sense amp on shared
    bl/blb.

    Node names: ``wl<i>`` per row, ``q<i>``/``qb<i>`` storage nodes,
    shared ``bl``/``blb``, ``pcb`` precharge (active low), ``se`` sense
    enable, ``out``/``outb`` latch outputs.
    """
    if rows < 1:
        raise ValueError("need at least one row")
    net = Netlist(f"column_{rows}r")
    # Cells: merge each cell's devices with renamed internal nodes.
    for i in range(rows):
        cell = sram6t_netlist(process, wl_node=f"wl{i}")
        rename = {"q": f"q{i}", "qb": f"qb{i}"}
        for m in cell.mosfets:
            net.add_mosfet(
                rename.get(m.drain, m.drain),
                rename.get(m.gate, m.gate),
                rename.get(m.source, m.source),
                m.params, m.w_um, m.l_um,
            )
    # Precharge and sense amp share the same bl/blb nodes by name.
    for m in precharge_netlist(process, gate_size).mosfets:
        net.add_mosfet(m.drain, m.gate, m.source, m.params, m.w_um,
                       m.l_um)
    sense = senseamp_netlist(process, gate_size, bitline_cap_f=1e-18)
    for m in sense.mosfets:
        net.add_mosfet(m.drain, m.gate, m.source, m.params, m.w_um,
                       m.l_um)
    # Bit-line wire load from the extraction model (the cells' junction
    # loads come in through their device diffusion caps).
    blp = bitline_parasitics(
        process, rows, _CELL_HEIGHT_LAMBDA * process.lambda_cu
    )
    net.add_capacitor("bl", GND, blp.capacitance_f)
    net.add_capacitor("blb", GND, blp.capacitance_f)
    return net


@dataclass
class ReadAccessResult:
    """Outcome of one simulated read access."""

    value_read: int
    value_stored: int
    access_time_s: float
    differential_v: float
    trace: TransientResult

    @property
    def correct(self) -> bool:
        return self.value_read == self.value_stored


def simulate_read_access(
    process: Process,
    rows: int,
    stored_bit: int,
    row: int = 0,
    gate_size: int = 1,
    t_precharge: float = 2e-9,
    t_develop: float = 3e-9,
    t_sense: float = 3e-9,
) -> ReadAccessResult:
    """Run a full precharge -> access -> sense read of one cell.

    Every *other* cell on the column stores the complement, the worst
    case for bit-line leakage-style disturbance.
    """
    if not 0 <= row < rows:
        raise ValueError("row out of range")
    vdd = process.vdd
    net = build_column_netlist(process, rows, gate_size)
    net.add_source("vdd", vdd)
    t1 = t_precharge
    t2 = t_precharge + t_develop
    t_end = t2 + t_sense
    edge = 100e-12
    # Precharge: low (active) until t1.
    net.add_source("pcb", Pwl([(0.0, 0.0), (t1, 0.0),
                               (t1 + edge, vdd)]))
    # Selected word line rises right after precharge ends.
    for i in range(rows):
        if i == row:
            net.add_source(
                f"wl{i}",
                Pwl([(0.0, 0.0), (t1 + edge, 0.0),
                     (t1 + 2 * edge, vdd)]),
            )
        else:
            net.add_source(f"wl{i}", 0.0)
    # Sense enable after the differential has developed.
    net.add_source("se", Pwl([(0.0, 0.0), (t2, 0.0),
                              (t2 + edge, vdd)]))

    initial: Dict[str, float] = {"bl": vdd, "blb": vdd,
                                 "out": vdd / 2, "outb": vdd / 2}
    for i in range(rows):
        bit = stored_bit if i == row else 1 - stored_bit
        initial[f"q{i}"] = vdd if bit else 0.0
        initial[f"qb{i}"] = 0.0 if bit else vdd

    engine = TransientEngine(net)
    trace = engine.run(
        t_end,
        record=["bl", "blb", "out", "outb", f"q{row}"],
        initial=initial,
    )
    # Differential at sense time.
    import numpy as np

    idx = int(np.searchsorted(trace.time, t2))
    differential = float(
        trace.trace("bl")[idx] - trace.trace("blb")[idx]
    )
    out, outb = trace.final("out"), trace.final("outb")
    # Reading convention: storing 1 leaves bl high and blb discharged,
    # so out resolves high.
    value_read = 1 if out > outb else 0
    # Access time: word line rise to latch decision (90% separation).
    t_wl = t_precharge + 2 * edge
    access = _decision_time(trace, vdd) - t_wl
    return ReadAccessResult(
        value_read=value_read,
        value_stored=stored_bit,
        access_time_s=access,
        differential_v=differential,
        trace=trace,
    )


def _decision_time(trace: TransientResult, vdd: float) -> float:
    """First time |out - outb| exceeds 80% of VDD."""
    import numpy as np

    gap = np.abs(trace.trace("out") - trace.trace("outb"))
    hits = np.nonzero(gap > 0.8 * vdd)[0]
    if len(hits) == 0:
        return float(trace.time[-1])
    return float(trace.time[int(hits[0])])
