"""SPICE-driven transistor sizing.

"For a given gate size, the P and N transistors are automatically sized
to balance the rise and fall times.  This is made possible by built-in
access to SPICE utilities." — the paper, section II.

:func:`balance_inverter` does exactly that: simulate an inverter driving
a load, bisect on the P/N width ratio until rise and fall times agree to
tolerance.  :func:`size_for_drive` scales critical gates (precharge
devices, word-line drivers) above minimum size for current drive, the
other sizing knob the paper exposes via its *size-of-critical-gates*
parameter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.netlist import GND, Netlist
from repro.spice.analysis import fall_time, rise_time
from repro.spice.engine import TransientEngine
from repro.spice.waveforms import pulse
from repro.tech.process import Process


@dataclass(frozen=True)
class InverterSizing:
    """Result of the rise/fall balancing loop."""

    wn_um: float
    wp_um: float
    rise_s: float
    fall_s: float

    @property
    def ratio(self) -> float:
        return self.wp_um / self.wn_um

    @property
    def imbalance(self) -> float:
        """Relative rise/fall mismatch, 0 = perfectly balanced."""
        avg = (self.rise_s + self.fall_s) / 2.0
        return abs(self.rise_s - self.fall_s) / avg


def _measure(process: Process, wn: float, wp: float,
             load_ff: float) -> tuple:
    """Simulate one inverter with a pulse input; return (rise, fall)."""
    net = Netlist("inv_sizing")
    net.add_source("vdd", process.vdd)
    half_period = 4e-9
    net.add_source(
        "in", pulse(0.5e-9, half_period, 0.0, process.vdd, t_edge=100e-12)
    )
    net.add_inverter("in", "out", process.nmos, process.pmos, wn, wp)
    net.add_capacitor("out", GND, load_ff * 1e-15)
    engine = TransientEngine(net)
    result = engine.run(
        2 * half_period, record=["in", "out"], initial={"out": process.vdd}
    )
    # Input pulse rising -> output falls first, then rises at pulse end.
    fall = fall_time(result, "out", process.vdd)
    rise = rise_time(result, "out", process.vdd, after=0.5e-9 + half_period / 2)
    return rise, fall


def balance_inverter(
    process: Process,
    wn_um: float,
    load_ff: float = 20.0,
    tolerance: float = 0.05,
    max_iterations: int = 12,
) -> InverterSizing:
    """Find the PMOS width balancing rise and fall for a given NMOS width.

    Bisects on the P/N ratio in [0.5, 6].  The optimum is a little above
    the kp ratio of the process (~2.5) because the falling input edge
    assists the rising output.
    """
    if wn_um <= 0:
        raise ValueError("NMOS width must be positive")
    lo, hi = 0.5, 6.0
    best = None
    for _ in range(max_iterations):
        ratio = (lo + hi) / 2.0
        rise, fall = _measure(process, wn_um, wn_um * ratio, load_ff)
        sizing = InverterSizing(wn_um, wn_um * ratio, rise, fall)
        if best is None or sizing.imbalance < best.imbalance:
            best = sizing
        if sizing.imbalance <= tolerance:
            return sizing
        if rise > fall:
            lo = ratio  # PMOS too weak: rise slow -> widen P
        else:
            hi = ratio
    return best


def size_for_drive(process: Process, gate_size: int,
                   base_wn_um: float = None) -> float:
    """Width in um for a critical gate of integer size ``gate_size``.

    ``gate_size`` is the paper's user parameter ("size of critical gates
    in the RAM circuitry"): 1 = minimum, k = k times minimum drive.
    """
    if gate_size < 1:
        raise ValueError("gate size must be >= 1")
    base = base_wn_um if base_wn_um is not None else 3 * process.feature_um
    return base * gate_size
