"""BISRAMGen: the top-level physical design tool.

One call compiles a :class:`~repro.core.config.RamConfig` into:

* the hierarchical layout (DRC-checkable, CIF/SVG-exportable),
* the behavioural simulation model (a fault-injectable
  :class:`~repro.memsim.device.BisrRam` plus the TRPLA-driven test
  controller),
* the TRPLA control-code plane files,
* the datasheet of extrapolated guarantees,
* the Table I area accounting (BIST/BISR overhead vs. the plain RAM).
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.bist.controller import TrplaController
from repro.bist.march import IFA_9, MarchTest
from repro.bist.trpla import render_plane_text
from repro.core.canonical import stable_digest
from repro.core.config import RamConfig
from repro.core.datasheet import Datasheet, build_datasheet
from repro.core.errors import ConfigError, SignoffError
from repro.core.floorplan import Floorplan, build_floorplan
from repro.core.stages import StageCache, StageRunner, StageTiming
from repro.layout.cif import write_cif
from repro.layout.render import render_ascii, render_svg
from repro.memsim.device import BisrRam
from repro.tech.process import get_process

if TYPE_CHECKING:
    from repro.verify.report import SignoffReport

#: Valid values of the ``signoff`` policy knob.
SIGNOFF_POLICIES = (None, "strict", "degrade")


def march_digest(march: MarchTest) -> str:
    """Content identity of a march test: its name *and* its notation.

    Two user-parsed marches that happen to share a name but differ in
    operations must not share stage-cache or artifact-store entries.
    """
    return stable_digest(
        {"name": march.name, "notation": str(march)}, 16)


@dataclass
class AreaReport:
    """Table I accounting for one configuration.

    ``total_mm2``/``baseline_mm2`` sum the macrocell areas (silicon
    spent); ``bbox_mm2`` is the assembled module's bounding box, which
    additionally contains floorplan dead space.
    """

    total_mm2: float
    baseline_mm2: float
    array_mm2: float
    bist_bisr_mm2: float
    spare_rows_mm2: float
    bbox_mm2: float = 0.0
    spare_cols_mm2: float = 0.0

    @property
    def overhead_percent(self) -> float:
        """BIST+BISR+spares overhead over the plain RAM module.

        Table I's metric: the redundant module's area over the area of
        the same RAM without BIST, BISR, or spare rows.
        """
        return 100.0 * (self.total_mm2 / self.baseline_mm2 - 1.0)

    @property
    def bist_bisr_only_percent(self) -> float:
        """Overhead excluding the spare rows/columns, which the paper
        does not count ("redundancy is used in a vast majority of large
        RAMs even if there is no self-repair")."""
        return 100.0 * (
            (self.total_mm2 - self.spare_rows_mm2 - self.spare_cols_mm2)
            / self.baseline_mm2
            - 1.0
        )


@dataclass
class CompiledRam:
    """Everything BISRAMGen produces for one configuration."""

    config: RamConfig
    floorplan: Floorplan
    datasheet: Datasheet
    area_report: AreaReport
    #: Attached when the build ran with a signoff policy; under
    #: ``degrade`` this is where a dirty report lands instead of an
    #: exception.
    signoff: Optional["SignoffReport"] = None
    #: The rendered TRPLA plane-file texts (AND, OR) the control-planes
    #: stage produced; ``write_control_code`` dumps exactly these bytes
    #: so cached and uncached builds emit identical artifacts.
    plane_texts: Optional[Tuple[str, str]] = None
    #: Per-stage cache verdicts and wall time for this build, in
    #: pipeline order (empty for hand-constructed instances).
    stages: List[StageTiming] = field(default_factory=list)

    def simulation_model(self) -> BisrRam:
        """A fresh behavioural device for this configuration."""
        return BisrRam(
            rows=self.config.rows,
            bpw=self.config.bpw,
            bpc=self.config.bpc,
            spares=self.config.spares,
            spare_cols=self.config.spare_cols,
            ports=self.config.ports,
        )

    def self_test_controller(self, device: Optional[BisrRam] = None,
                             march: MarchTest = IFA_9,
                             fresh: bool = True) -> TrplaController:
        """The TRPLA-driven BIST/BISR controller bound to a device."""
        return TrplaController(
            march, bpw=self.config.bpw,
            target=device or self.simulation_model(),
            fresh=fresh,
        )

    def control_plane_texts(self) -> Tuple[str, str]:
        """The (AND, OR) plane-file texts, rendering on demand when the
        control-planes stage did not run (hand-built instances)."""
        if self.plane_texts is not None:
            return self.plane_texts
        pla = self.floorplan.assembled_pla
        return (render_plane_text(pla.and_plane),
                render_plane_text(pla.or_plane))

    def write_control_code(self, directory) -> Dict[str, Path]:
        """Emit the two TRPLA plane files the tool reads at runtime."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        and_path = directory / "trpla_and.plane"
        or_path = directory / "trpla_or.plane"
        and_text, or_text = self.control_plane_texts()
        and_path.write_text(and_text)
        or_path.write_text(or_text)
        return {"and": and_path, "or": or_path}

    def cif_text(self) -> str:
        """The full CIF export as a string (what :meth:`write_cif`
        writes and the artifact store persists)."""
        process = get_process(self.config.process)
        buffer = io.StringIO()
        write_cif(self.floorplan.top, buffer, process.layers)
        return buffer.getvalue()

    def write_cif(self, path) -> None:
        """Export the full layout hierarchy as CIF."""
        with open(path, "w") as stream:
            stream.write(self.cif_text())

    def render_svg(self, flatten_depth: int = 2, width_px: int = 900
                   ) -> str:
        """A layout plot (the view of the paper's Figs. 6-7)."""
        process = get_process(self.config.process)
        return render_svg(
            self.floorplan.top, process.layers,
            width_px=width_px, flatten_depth=flatten_depth,
        )

    def render_ascii(self, columns: int = 78, rows: int = 24) -> str:
        """A terminal floorplan sketch."""
        return render_ascii(self.floorplan.top, columns, rows)

    def flow_report(self, stage_line: bool = True) -> str:
        """The Fig. 1 pipeline, summarised for this compilation run:
        what each phase produced, from leaf cells to guarantees.

        ``stage_line=False`` omits the per-build cache-verdict/timing
        line — the form the artifact store persists, since those
        verdicts describe one build, not the macro (and would break
        byte-identity between cached and fresh runs).
        """
        config = self.config
        plan = self.floorplan
        pla = plan.assembled_pla
        ds = self.datasheet
        ar = self.area_report
        leaf_kinds = sorted(
            {c.name for macro in plan.macrocells.values()
             for c in macro.subcells().values()
             if not c.instances()}
        )
        lines = [
            f"BISRAMGEN flow report — {config.describe()}",
            f"1. leaf-cell library      : {len(leaf_kinds)} kinds "
            f"({', '.join(leaf_kinds[:6])}"
            f"{', ...' if len(leaf_kinds) > 6 else ''})",
            f"2. macrocell generation   : {len(plan.macrocells)} macros "
            f"({', '.join(sorted(plan.macrocells))})",
            f"3. control microprogram   : {pla.term_count} PLA terms, "
            f"{pla.state_bits} state flip-flops",
            f"4. assembly               : "
            f"{len(plan.top.instances())} placed blocks, "
            f"bbox {ar.bbox_mm2:.2f} mm^2",
            f"5. area accounting        : {ar.total_mm2:.2f} mm^2 spent "
            f"(overhead {ar.overhead_percent:.2f}% over the plain RAM)",
            f"6. guarantees             : access "
            f"{ds.read_access_s * 1e9:.2f} ns, TLB "
            f"{ds.tlb_penalty_s * 1e9:.2f} ns "
            f"({'masked' if ds.tlb_masked else 'NOT masked'}), "
            f"self-test {ds.selftest_total_s:.1f} s",
            f"7. rule deck              : {config.process} "
            f"(fingerprint {ds.deck_fingerprint or get_process(config.process).fingerprint()})",
        ]
        if stage_line and self.stages:
            lines.append(
                "8. stage cache            : "
                + " | ".join(
                    f"{t.name} {'HIT' if t.hit else 'MISS'} "
                    f"{t.elapsed_s:.3f}s"
                    for t in self.stages)
            )
        return "\n".join(lines)


class BISRAMGen:
    """The physical design tool for built-in self-repairable RAMs."""

    def __init__(self, config: RamConfig, march: MarchTest = IFA_9) -> None:
        self.config = config
        self.march = march

    def stage_key(self) -> str:
        """Content key every stage of this build derives from:
        configuration digest + march identity + deck fingerprint.

        The fingerprint covers the *whole* resolved deck (rules, layer
        map, devices, supply, parasitics), not just the rule table, so
        a registry deck edit of any kind invalidates cached stages."""
        deck = get_process(self.config.process).fingerprint()
        return (f"{self.config.digest(32)}:{march_digest(self.march)}"
                f":{deck}")

    def _checked_floorplan(self, with_bisr: bool) -> Floorplan:
        """One floorplan build with the generator-rejection wrap."""
        try:
            return build_floorplan(self.config, self.march,
                                   with_bisr=with_bisr)
        except ConfigError:
            raise
        except ValueError as error:
            raise ConfigError(
                f"cannot build {self.config.describe()}: {error}"
            ) from error

    def build(self, signoff: Optional[str] = None,
              stage_cache: Optional[StageCache] = None) -> CompiledRam:
        """Compile the configuration into layout + models + datasheet.

        The build is a pipeline of explicitly keyed stages —
        floorplan -> layout -> control-planes -> datasheet -> signoff —
        each memoizable against ``stage_cache``, so a rebuild of an
        unchanged configuration reuses every stage and a build that
        only changes the signoff policy reuses the cached layout.

        Raises :class:`~repro.core.errors.ConfigError` when the
        configuration is structurally valid but physically unbuildable
        (a generator rejects it), so callers see one error type for
        every "your parameters are wrong" outcome.

        Args:
            signoff: stage-gate policy.  ``None`` skips verification
                (the fast path for area/yield sweeps that never export
                layout).  ``"strict"`` runs the full signoff sweep and
                raises :class:`~repro.core.errors.SignoffError` —
                carrying the structured report — on any finding.
                ``"degrade"`` runs the same sweep but always returns,
                attaching the report as ``CompiledRam.signoff`` for the
                caller to inspect.
            stage_cache: optional shared :class:`StageCache`.  Cached
                products are live objects, not copies — callers that
                mutate a compiled macro's geometry must not share a
                cache (see :mod:`repro.core.stages`).
        """
        if signoff not in SIGNOFF_POLICIES:
            raise ConfigError(
                f"unknown signoff policy {signoff!r}; "
                f"expected one of {SIGNOFF_POLICIES}"
            )
        runner = StageRunner(stage_cache)
        base_key = self.stage_key()

        floorplan = runner.run(
            "floorplan", base_key,
            lambda: self._checked_floorplan(with_bisr=True))

        def layout_stage() -> AreaReport:
            baseline = self._checked_floorplan(with_bisr=False)
            cu2_to_mm2 = 1e-10
            return AreaReport(
                total_mm2=floorplan.component_area_mm2(),
                baseline_mm2=baseline.component_area_mm2(),
                array_mm2=floorplan.area_mm2("array"),
                bist_bisr_mm2=floorplan.bist_bisr_area_cu2()
                * cu2_to_mm2,
                spare_rows_mm2=floorplan.spare_rows_area_cu2(self.config)
                * cu2_to_mm2,
                bbox_mm2=floorplan.area_mm2(),
                spare_cols_mm2=floorplan.spare_cols_area_cu2(self.config)
                * cu2_to_mm2,
            )

        report = runner.run("layout", base_key, layout_stage)

        def planes_stage() -> Tuple[str, str]:
            pla = floorplan.assembled_pla
            return (render_plane_text(pla.and_plane),
                    render_plane_text(pla.or_plane))

        plane_texts = runner.run("control-planes", base_key, planes_stage)
        datasheet = runner.run(
            "datasheet", base_key,
            lambda: build_datasheet(self.config, report.total_mm2))

        compiled = CompiledRam(
            config=self.config,
            floorplan=floorplan,
            datasheet=datasheet,
            area_report=report,
            plane_texts=plane_texts,
        )
        if signoff is not None:
            def signoff_stage():
                # Imported here: the verify subsystem sits above the
                # compiler in the layering and pulls networkx.
                from repro.verify.signoff import run_signoff

                return run_signoff(compiled, march=self.march)

            # The report does not depend on the policy (strict vs
            # degrade only changes what the caller sees), so both
            # policies share one cached sweep.
            compiled.signoff = runner.run(
                "signoff", base_key, signoff_stage)
            if not compiled.signoff.clean and signoff == "strict":
                failed = [f"{r.checker}/{r.stage}"
                          for r in compiled.signoff.results if not r.passed]
                compiled.stages = runner.timings
                raise SignoffError(
                    f"signoff failed for {self.config.describe()}: "
                    f"{', '.join(failed)} "
                    f"({len(compiled.signoff.findings())} finding(s))",
                    report=compiled.signoff.to_dict(),
                    failure_class=compiled.signoff.failure_class or "",
                )
        compiled.stages = runner.timings
        return compiled


def compile_ram(config: RamConfig, march: MarchTest = IFA_9,
                signoff: Optional[str] = None,
                stage_cache: Optional[StageCache] = None) -> CompiledRam:
    """One-call compilation (the examples' entry point)."""
    return BISRAMGen(config, march).build(signoff=signoff,
                                          stage_cache=stage_cache)
