"""BISRAMGen: the top-level physical design tool.

One call compiles a :class:`~repro.core.config.RamConfig` into:

* the hierarchical layout (DRC-checkable, CIF/SVG-exportable),
* the behavioural simulation model (a fault-injectable
  :class:`~repro.memsim.device.BisrRam` plus the TRPLA-driven test
  controller),
* the TRPLA control-code plane files,
* the datasheet of extrapolated guarantees,
* the Table I area accounting (BIST/BISR overhead vs. the plain RAM).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Optional

from repro.bist.controller import TrplaController
from repro.bist.march import IFA_9, MarchTest
from repro.bist.trpla import write_plane_files
from repro.core.config import RamConfig
from repro.core.datasheet import Datasheet, build_datasheet
from repro.core.errors import ConfigError, SignoffError
from repro.core.floorplan import Floorplan, build_floorplan
from repro.layout.cif import write_cif
from repro.layout.render import render_ascii, render_svg
from repro.memsim.device import BisrRam
from repro.tech.process import get_process

if TYPE_CHECKING:
    from repro.verify.report import SignoffReport

#: Valid values of the ``signoff`` policy knob.
SIGNOFF_POLICIES = (None, "strict", "degrade")


@dataclass
class AreaReport:
    """Table I accounting for one configuration.

    ``total_mm2``/``baseline_mm2`` sum the macrocell areas (silicon
    spent); ``bbox_mm2`` is the assembled module's bounding box, which
    additionally contains floorplan dead space.
    """

    total_mm2: float
    baseline_mm2: float
    array_mm2: float
    bist_bisr_mm2: float
    spare_rows_mm2: float
    bbox_mm2: float = 0.0

    @property
    def overhead_percent(self) -> float:
        """BIST+BISR+spares overhead over the plain RAM module.

        Table I's metric: the redundant module's area over the area of
        the same RAM without BIST, BISR, or spare rows.
        """
        return 100.0 * (self.total_mm2 / self.baseline_mm2 - 1.0)

    @property
    def bist_bisr_only_percent(self) -> float:
        """Overhead excluding the spare rows, which the paper does not
        count ("redundancy is used in a vast majority of large RAMs
        even if there is no self-repair")."""
        return 100.0 * (
            (self.total_mm2 - self.spare_rows_mm2) / self.baseline_mm2
            - 1.0
        )


@dataclass
class CompiledRam:
    """Everything BISRAMGen produces for one configuration."""

    config: RamConfig
    floorplan: Floorplan
    datasheet: Datasheet
    area_report: AreaReport
    #: Attached when the build ran with a signoff policy; under
    #: ``degrade`` this is where a dirty report lands instead of an
    #: exception.
    signoff: Optional["SignoffReport"] = None

    def simulation_model(self) -> BisrRam:
        """A fresh behavioural device for this configuration."""
        return BisrRam(
            rows=self.config.rows,
            bpw=self.config.bpw,
            bpc=self.config.bpc,
            spares=self.config.spares,
        )

    def self_test_controller(self, device: Optional[BisrRam] = None,
                             march: MarchTest = IFA_9,
                             fresh: bool = True) -> TrplaController:
        """The TRPLA-driven BIST/BISR controller bound to a device."""
        return TrplaController(
            march, bpw=self.config.bpw,
            target=device or self.simulation_model(),
            fresh=fresh,
        )

    def write_control_code(self, directory) -> Dict[str, Path]:
        """Emit the two TRPLA plane files the tool reads at runtime."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        and_path = directory / "trpla_and.plane"
        or_path = directory / "trpla_or.plane"
        pla = self.floorplan.assembled_pla
        write_plane_files(and_path, or_path, pla.and_plane, pla.or_plane)
        return {"and": and_path, "or": or_path}

    def write_cif(self, path) -> None:
        """Export the full layout hierarchy as CIF."""
        process = get_process(self.config.process)
        with open(path, "w") as stream:
            write_cif(self.floorplan.top, stream, process.layers)

    def render_svg(self, flatten_depth: int = 2, width_px: int = 900
                   ) -> str:
        """A layout plot (the view of the paper's Figs. 6-7)."""
        process = get_process(self.config.process)
        return render_svg(
            self.floorplan.top, process.layers,
            width_px=width_px, flatten_depth=flatten_depth,
        )

    def render_ascii(self, columns: int = 78, rows: int = 24) -> str:
        """A terminal floorplan sketch."""
        return render_ascii(self.floorplan.top, columns, rows)

    def flow_report(self) -> str:
        """The Fig. 1 pipeline, summarised for this compilation run:
        what each phase produced, from leaf cells to guarantees."""
        config = self.config
        plan = self.floorplan
        pla = plan.assembled_pla
        ds = self.datasheet
        ar = self.area_report
        leaf_kinds = sorted(
            {c.name for macro in plan.macrocells.values()
             for c in macro.subcells().values()
             if not c.instances()}
        )
        lines = [
            f"BISRAMGEN flow report — {config.describe()}",
            f"1. leaf-cell library      : {len(leaf_kinds)} kinds "
            f"({', '.join(leaf_kinds[:6])}"
            f"{', ...' if len(leaf_kinds) > 6 else ''})",
            f"2. macrocell generation   : {len(plan.macrocells)} macros "
            f"({', '.join(sorted(plan.macrocells))})",
            f"3. control microprogram   : {pla.term_count} PLA terms, "
            f"{pla.state_bits} state flip-flops",
            f"4. assembly               : "
            f"{len(plan.top.instances())} placed blocks, "
            f"bbox {ar.bbox_mm2:.2f} mm^2",
            f"5. area accounting        : {ar.total_mm2:.2f} mm^2 spent "
            f"(overhead {ar.overhead_percent:.2f}% over the plain RAM)",
            f"6. guarantees             : access "
            f"{ds.read_access_s * 1e9:.2f} ns, TLB "
            f"{ds.tlb_penalty_s * 1e9:.2f} ns "
            f"({'masked' if ds.tlb_masked else 'NOT masked'}), "
            f"self-test {ds.selftest_total_s:.1f} s",
        ]
        return "\n".join(lines)


class BISRAMGen:
    """The physical design tool for built-in self-repairable RAMs."""

    def __init__(self, config: RamConfig, march: MarchTest = IFA_9) -> None:
        self.config = config
        self.march = march

    def build(self, signoff: Optional[str] = None) -> CompiledRam:
        """Compile the configuration into layout + models + datasheet.

        Raises :class:`~repro.core.errors.ConfigError` when the
        configuration is structurally valid but physically unbuildable
        (a generator rejects it), so callers see one error type for
        every "your parameters are wrong" outcome.

        Args:
            signoff: stage-gate policy.  ``None`` skips verification
                (the fast path for area/yield sweeps that never export
                layout).  ``"strict"`` runs the full signoff sweep and
                raises :class:`~repro.core.errors.SignoffError` —
                carrying the structured report — on any finding.
                ``"degrade"`` runs the same sweep but always returns,
                attaching the report as ``CompiledRam.signoff`` for the
                caller to inspect.
        """
        if signoff not in SIGNOFF_POLICIES:
            raise ConfigError(
                f"unknown signoff policy {signoff!r}; "
                f"expected one of {SIGNOFF_POLICIES}"
            )
        try:
            floorplan = build_floorplan(self.config, self.march,
                                        with_bisr=True)
            baseline = build_floorplan(self.config, self.march,
                                       with_bisr=False)
        except ConfigError:
            raise
        except ValueError as error:
            raise ConfigError(
                f"cannot build {self.config.describe()}: {error}"
            ) from error
        cu2_to_mm2 = 1e-10
        total = floorplan.component_area_mm2()
        base = baseline.component_area_mm2()
        report = AreaReport(
            total_mm2=total,
            baseline_mm2=base,
            array_mm2=floorplan.area_mm2("array"),
            bist_bisr_mm2=floorplan.bist_bisr_area_cu2() * cu2_to_mm2,
            spare_rows_mm2=floorplan.spare_rows_area_cu2(self.config)
            * cu2_to_mm2,
            bbox_mm2=floorplan.area_mm2(),
        )
        datasheet = build_datasheet(self.config, total)
        compiled = CompiledRam(
            config=self.config,
            floorplan=floorplan,
            datasheet=datasheet,
            area_report=report,
        )
        if signoff is not None:
            # Imported here: the verify subsystem sits above the
            # compiler in the layering and pulls networkx.
            from repro.verify.signoff import run_signoff

            compiled.signoff = run_signoff(compiled, march=self.march)
            if not compiled.signoff.clean and signoff == "strict":
                failed = [f"{r.checker}/{r.stage}"
                          for r in compiled.signoff.results if not r.passed]
                raise SignoffError(
                    f"signoff failed for {self.config.describe()}: "
                    f"{', '.join(failed)} "
                    f"({len(compiled.signoff.findings())} finding(s))",
                    report=compiled.signoff.to_dict(),
                    failure_class=compiled.signoff.failure_class or "",
                )
        return compiled


def compile_ram(config: RamConfig, march: MarchTest = IFA_9,
                signoff: Optional[str] = None) -> CompiledRam:
    """One-call compilation (the examples' entry point)."""
    return BISRAMGen(config, march).build(signoff=signoff)
