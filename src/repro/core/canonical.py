"""Canonical JSON serialisation and stable content digests.

Every identity in the repo that outlives a process — the artifact
store's bundle keys, the compiler's stage-cache keys, the campaign
journal's fingerprint header — reduces to the same recipe: serialise
to *canonical* JSON (sorted keys, no whitespace) and hash with
SHA-256.  Centralising the recipe here guarantees that two subsystems
never disagree about what "the same configuration" means, and that a
digest written to disk today still matches tomorrow's process.

This module must stay import-light (stdlib only): it is imported from
:mod:`repro.core.config`, which everything else imports.
"""

from __future__ import annotations

import hashlib
import json
from typing import Optional

from repro.core.errors import ConfigError


def canonical_json(obj) -> str:
    """Serialise ``obj`` to canonical JSON: sorted keys, no whitespace.

    The output is byte-stable across processes and Python versions for
    any JSON-serializable input, so it is safe to hash and persist.

    Raises:
        ConfigError: when ``obj`` contains something JSON cannot
            express (the caller passed a non-serialisable identity).
    """
    try:
        return json.dumps(obj, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as error:
        raise ConfigError(
            f"identity is not JSON-serializable: {error}"
        ) from None


def stable_digest(obj, chars: Optional[int] = None) -> str:
    """SHA-256 hex digest of ``obj``'s canonical JSON form.

    Args:
        obj: any JSON-serializable value.
        chars: truncate the 64-character hex digest to this many
            characters (None keeps it whole).  Truncation is for
            human-facing labels and legacy formats; full digests are
            what keyed storage should use.
    """
    digest = hashlib.sha256(
        canonical_json(obj).encode("utf-8")).hexdigest()
    return digest[:chars] if chars else digest
