"""The BISRAMGEN compiler core.

* :mod:`~repro.core.config` — the user parameters (bpw, bpc, word
  count, spare rows, critical gate size, strap space) with the paper's
  validation rules,
* :mod:`~repro.core.floorplan` — macrocell generation and assembly,
* :mod:`~repro.core.datasheet` — the timing/area/power guarantees
  extrapolated from characterised leaf cells,
* :mod:`~repro.core.compiler` — :class:`BISRAMGen`, the top-level tool:
  layout + simulation model + datasheet from one configuration.
"""

from repro.core.config import RamConfig
from repro.core.datasheet import Datasheet
from repro.core.compiler import BISRAMGen, CompiledRam, compile_ram
from repro.core.errors import (
    ConfigError,
    RepairExhausted,
    ReproError,
    SpiceConvergenceError,
)

__all__ = [
    "RamConfig",
    "Datasheet",
    "BISRAMGen",
    "CompiledRam",
    "compile_ram",
    "ReproError",
    "ConfigError",
    "RepairExhausted",
    "SpiceConvergenceError",
]
