"""The BISRAMGEN compiler core.

* :mod:`~repro.core.config` — the user parameters (bpw, bpc, word
  count, spare rows, critical gate size, strap space) with the paper's
  validation rules,
* :mod:`~repro.core.floorplan` — macrocell generation and assembly,
* :mod:`~repro.core.datasheet` — the timing/area/power guarantees
  extrapolated from characterised leaf cells,
* :mod:`~repro.core.compiler` — :class:`BISRAMGen`, the top-level tool:
  layout + simulation model + datasheet from one configuration,
* :mod:`~repro.core.stages` — stage-level memoization for the build
  pipeline (floorplan -> layout -> control planes -> datasheet ->
  signoff),
* :mod:`~repro.core.canonical` — the canonical-JSON digest recipe
  shared by stage keys, artifact-store keys, and campaign
  fingerprints.
"""

from repro.core.canonical import canonical_json, stable_digest
from repro.core.config import RamConfig
from repro.core.datasheet import Datasheet
from repro.core.compiler import BISRAMGen, CompiledRam, compile_ram
from repro.core.errors import (
    ConfigError,
    RepairExhausted,
    ReproError,
    ServiceUnavailable,
    SpiceConvergenceError,
)
from repro.core.stages import StageCache, StageTiming

__all__ = [
    "RamConfig",
    "Datasheet",
    "BISRAMGen",
    "CompiledRam",
    "compile_ram",
    "StageCache",
    "StageTiming",
    "canonical_json",
    "stable_digest",
    "ReproError",
    "ConfigError",
    "RepairExhausted",
    "ServiceUnavailable",
    "SpiceConvergenceError",
]
