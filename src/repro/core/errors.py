"""The structured error taxonomy of the reproduction.

Every failure the tool can *anticipate* raises a subclass of
:class:`ReproError`, so callers (the CLI, the repair supervisor, long
Monte-Carlo campaigns) can distinguish "the user asked for something
impossible" from "the hardware model could not converge" from a genuine
bug — and degrade gracefully instead of dying on a traceback.

The taxonomy deliberately multiple-inherits from the builtin exception
each error used to be, so existing ``except ValueError`` /
``except RuntimeError`` call sites keep working:

* :class:`ConfigError` (also a ``ValueError``) — invalid user-supplied
  configuration: a bad :class:`~repro.core.config.RamConfig`, a
  degenerate :class:`~repro.memsim.injector.FaultMix`, an out-of-range
  escalation policy.
* :class:`RepairExhausted` — self-repair ran out of spare rows; carries
  the rows left unrepaired so the caller can report or map them out.
* :class:`SpiceConvergenceError` (also a ``RuntimeError``) — the
  transient engine hit its step budget before ``t_stop``; carries how
  far it got so callers can decide whether the partial run is usable.
* :class:`SignoffError` — a compiled macro failed signoff verification
  in ``strict`` mode; carries the JSON-serializable report dict so the
  CLI and campaign journal can render or persist the findings.

This module must stay import-light (stdlib only): it is imported from
every layer, including during package initialisation.
"""

from __future__ import annotations

from typing import Optional, Tuple


class ReproError(Exception):
    """Base class of every anticipated failure in the reproduction."""


class ConfigError(ReproError, ValueError):
    """The user-supplied configuration is invalid.

    Also a ``ValueError`` so call sites predating the taxonomy keep
    catching it.
    """


class UnknownProcessError(ConfigError, KeyError):
    """A process/deck name resolved to nothing in the registry.

    Also a ``KeyError`` so call sites predating the taxonomy (the
    original ``get_process`` raised bare ``KeyError``) keep catching
    it.  The message always carries the available deck names.

    Attributes:
        name: the process name that failed to resolve.
        available: deck names the registry knows about.
    """

    def __init__(self, name: str,
                 available: Tuple[str, ...] = ()) -> None:
        super().__init__(
            f"unknown process {name!r}; available: {tuple(available)}"
        )
        self.name = name
        self.available = tuple(available)

    def __str__(self) -> str:
        # KeyError.__str__ repr()s the message; restore the plain text.
        return self.args[0]


class DescriptorError(ConfigError):
    """A technology descriptor file failed validation.

    Attributes:
        path: the descriptor file (empty for in-memory descriptors).
        field_errors: ``(field, message)`` pairs, one per offending
            descriptor field, so callers can render a per-field report.
    """

    def __init__(self, message: str, path: str = "",
                 field_errors: Tuple[Tuple[str, str], ...] = ()) -> None:
        super().__init__(message)
        self.path = path
        self.field_errors = tuple(field_errors)


class RepairExhausted(ReproError):
    """Self-repair ran out of spare rows before the array was clean.

    Attributes:
        unrepaired_rows: row addresses still faulty when the spare
            sequence ran out.
        spares: total spare rows the device had.
    """

    def __init__(self, message: str,
                 unrepaired_rows: Tuple[int, ...] = (),
                 spares: int = 0) -> None:
        super().__init__(message)
        self.unrepaired_rows = tuple(unrepaired_rows)
        self.spares = spares


class SpiceConvergenceError(ReproError, RuntimeError):
    """The transient integration did not reach ``t_stop``.

    Also a ``RuntimeError`` so call sites predating the taxonomy keep
    catching it.

    Attributes:
        t_reached: simulated time actually reached (seconds).
        t_stop: requested end time (seconds).
        steps: integration steps spent.
    """

    def __init__(self, message: str, t_reached: float = 0.0,
                 t_stop: float = 0.0, steps: int = 0) -> None:
        super().__init__(message)
        self.t_reached = t_reached
        self.t_stop = t_stop
        self.steps = steps

    @property
    def progress(self) -> float:
        """Fraction of the requested transient actually integrated.

        Clamped to [0, 1], and 0.0 when ``t_stop`` is unknown or
        non-positive, so campaign degradation reports can average it
        over many failed shards without special cases.
        """
        if self.t_stop <= 0:
            return 0.0
        return max(0.0, min(1.0, self.t_reached / self.t_stop))


class ServiceUnavailable(ReproError):
    """The macro server refused a request it could not queue.

    Raised on submit when the bounded request queue is full
    (backpressure) or the server is draining for shutdown.  Clients
    should back off and retry; the CLI maps it — like every
    :class:`ReproError` — onto exit code 2.

    Attributes:
        reason: ``"saturated"``, ``"draining"``, ``"not_ready"``,
            ``"resource_pressure"`` (governor shedding / read-only
            degraded mode), ``"standby_miss"`` (a standby can only
            serve store hits), ``"lease_held"`` (a second primary was
            refused the liveness lease), ``"unreachable"`` /
            ``"interrupted"`` (client-side: no endpoint answered, or
            a batch stream died mid-flight).
        retry_after_s: server's advice on how long to back off before
            retrying (the HTTP front-end sends it as ``Retry-After``).
    """

    def __init__(self, message: str, reason: str = "saturated",
                 retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.reason = reason
        self.retry_after_s = retry_after_s


class BuildCrashed(ReproError):
    """A build request kept killing its worker process and was
    quarantined as a poison config (or died with its crash budget
    spent).

    The process-pool build backend raises this instead of retrying
    forever: a request that SIGKILLs/OOMs every worker it touches
    must be isolated, not re-flown into a healthy pool.

    Attributes:
        key: the bundle key of the poisonous request.
        crashes: worker deaths charged to it.
    """

    def __init__(self, message: str, key: str = "",
                 crashes: int = 0) -> None:
        super().__init__(message)
        self.key = key
        self.crashes = crashes


class SignoffError(ReproError):
    """A compiled macro failed signoff verification in ``strict`` mode.

    Attributes:
        report: the :class:`~repro.verify.report.SignoffReport` as a
            plain JSON-serializable dict (this module must stay
            import-light, so the typed report is not stored directly;
            rebuild it with ``SignoffReport.from_dict`` if needed).
        failure_class: the highest-priority failing checker family,
            one of ``"drc"``, ``"lvs"``, ``"control"``.
    """

    def __init__(self, message: str, report: Optional[dict] = None,
                 failure_class: str = "") -> None:
        super().__init__(message)
        self.report = report if report is not None else {}
        self.failure_class = failure_class
