"""Macrocell generation and floorplan assembly.

Builds the macrocells the paper names — RAM array, sense amplifier and
row/column decoder arrays, DATAGEN, ADDGEN, TLB, TRPLA, STREG — and
abuts them into the overall module:

::

    +---------------------------+------------------------------------+
    | decoders | wl drivers     |  precharge row                     |
    |          |                +------------------------------------+
    |          |                |  array (rows + spares, straps)     |
    |          |                +------------------------------------+
    |          |                |  column mux row                    |
    |          |                |  sense amps / write drivers        |
    +---------------------------+------------------------------------+
    |  BIST/BISR strip: TRPLA, TLB, ADDGEN, DATAGEN, STREG (placed   |
    |  by the decreasing-area placer)                                 |
    +-----------------------------------------------------------------+

The datapath rows are assembled by exact abutment (bit-line pitch is
shared by the bit cell, precharge, and mux cells); the control strip
uses :func:`~repro.pnr.placer.place_decreasing_area`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.bist.controller import build_test_program
from repro.bist.march import IFA_9, MarchTest
from repro.bist.microcode import AssembledPla, assemble
from repro.cells import (
    cam_cell,
    column_mux_cell,
    counter_bit_cell,
    dff_cell,
    johnson_bit_cell,
    comparator_slice_cell,
    pla_cell,
    precharge_cell,
    precharge_dp_cell,
    row_decoder_cell,
    senseamp_cell,
    sram6t_cell,
    sram_dp_cell,
    strap_cell,
    tristate_buffer_cell,
    wordline_driver_cell,
    write_driver_cell,
)
from repro.cells.sram6t import HEIGHT_LAMBDA as CELL_H
from repro.cells.sram6t import WIDTH_LAMBDA as CELL_W
from repro.cells.sram_dp import HEIGHT_LAMBDA as DP_CELL_H
from repro.core.config import RamConfig
from repro.geometry import Point, Transform
from repro.layout.cell import Cell
from repro.pnr.placer import Block, place_decreasing_area
from repro.tech.process import Process, get_process


@dataclass
class Floorplan:
    """Assembly result: the top cell plus the macrocell inventory."""

    top: Cell
    macrocells: Dict[str, Cell]
    areas_cu2: Dict[str, int]
    assembled_pla: AssembledPla

    #: mm^2 per square centimicron (1 cu = 1e-5 mm).
    _CU2_TO_MM2 = 1e-10

    def area_mm2(self, name: str = None) -> float:
        """Bounding-box area in mm^2 of one macro (or the whole module)."""
        if name is None:
            box = self.top.bbox()
            return box.area * self._CU2_TO_MM2 if box else 0.0
        return self.areas_cu2[name] * self._CU2_TO_MM2

    def component_area_mm2(self) -> float:
        """Sum of macrocell areas in mm^2 — the silicon actually spent.

        The top bounding box additionally contains the assembly's dead
        space; Table I compares spent silicon, so the overhead metric
        uses this sum (the bounding box is also reported).
        """
        return sum(self.areas_cu2.values()) * self._CU2_TO_MM2

    def bist_bisr_area_cu2(self) -> int:
        """Silicon spent on test-and-repair (TRPLA, TLB, generators,
        and the column steer when spare columns exist)."""
        keys = ("trpla", "tlb", "addgen", "datagen", "streg", "colsteer")
        return sum(self.areas_cu2[k] for k in keys if k in self.areas_cu2)

    def spare_rows_area_cu2(self, config: RamConfig) -> int:
        """Area of the redundant rows inside the array macro."""
        array_area = self.areas_cu2["array"]
        return array_area * config.spares // config.total_rows

    def spare_cols_area_cu2(self, config: RamConfig) -> int:
        """Area of the redundant columns inside the array macro."""
        if not config.spare_cols:
            return 0
        array_area = self.areas_cu2["array"]
        return array_area * config.spare_cols // config.total_columns


def build_floorplan(config: RamConfig, march: MarchTest = IFA_9,
                    with_bisr: bool = True) -> Floorplan:
    """Generate all macrocells and assemble the module.

    ``with_bisr=False`` builds the plain RAM (no spares, no BIST/BISR)
    used as the Table I baseline.
    """
    process = get_process(config.process)
    lam = process.lambda_cu
    macrocells: Dict[str, Cell] = {}

    # ---- datapath macrocells --------------------------------------------
    spares = config.spares if with_bisr else 0
    spare_cols = config.spare_cols if with_bisr else 0
    array = _build_array(config, process, spares, spare_cols)
    macrocells["array"] = array
    macrocells["precharge_row"] = _build_column_row(
        config, process, precharge_cell(process, config.gate_size),
        "precharge_row", spare_cols,
    )
    macrocells["mux_row"] = _build_column_row(
        config, process, column_mux_cell(process), "mux_row", spare_cols
    )
    macrocells["sense_row"] = _build_sense_row(config, process)
    row_pitch = (DP_CELL_H if config.ports == 2 else CELL_H) * lam
    macrocells["decoder_col"] = _build_decoder_column(
        config, process, spares, pitch=row_pitch
    )
    if config.ports == 2:
        # The second port brings its own bit-line service: a port-B
        # precharge row under the array (port-A lines pass through it)
        # and a second row-decoder column on the far side of the array.
        macrocells["precharge_row_b"] = _build_column_row(
            config, process, precharge_dp_cell(process, config.gate_size),
            "precharge_row_b", spare_cols,
        )
        macrocells["decoder_col_b"] = _build_decoder_column(
            config, process, spares, pitch=row_pitch, name="decoder_col_b"
        )

    # ---- BIST/BISR macrocells ---------------------------------------------
    program = build_test_program(march, passes=2)
    assembled = assemble(program)
    if with_bisr:
        macrocells["trpla"] = pla_cell(
            process, assembled.and_plane, assembled.or_plane, name="trpla"
        )
        macrocells["tlb"] = _build_tlb(config, process)
        macrocells["addgen"] = _tile_row(
            counter_bit_cell(process), config.address_bits, "addgen"
        )
        macrocells["datagen"] = _build_datagen(config, process)
        macrocells["streg"] = _tile_row(
            dff_cell(process), assembled.state_bits, "streg"
        )
        if spare_cols:
            macrocells["colsteer"] = _build_colsteer(config, process)

    # ---- assembly ----------------------------------------------------------------
    top = Cell("bisr_ram" if with_bisr else "ram")
    x_data = macrocells["decoder_col"].width
    y = 0

    def put(name: str, x: int, y_pos: int) -> None:
        top.add_instance(
            macrocells[name], Transform(translation=Point(x, y_pos)),
            name=name,
        )

    # Control strip at the bottom (BISR builds only).
    if with_bisr:
        strip_names = ["trpla", "tlb", "addgen", "datagen", "streg"]
        if "colsteer" in macrocells:
            strip_names.append("colsteer")
        blocks = [
            Block.from_cell(macrocells[n]) for n in strip_names
        ]
        # Block spacing must clear the largest same-layer spacing rule
        # (the n-well), or abutting macros' wells violate at top level.
        strip_gap = max(4 * lam, process.rules.min_space("nwell"))
        placement = place_decreasing_area(
            blocks,
            target_width=x_data + macrocells["array"].width,
            spacing=strip_gap,
        )
        for name in strip_names:
            rect = placement.locations[name]
            top.add_instance(
                macrocells[name],
                Transform(translation=Point(rect.x1, rect.y1)),
                name=name,
            )
        y = placement.outline().height + 8 * lam

    put("sense_row", x_data, y)
    y += macrocells["sense_row"].height
    put("mux_row", x_data, y)
    y += macrocells["mux_row"].height
    if config.ports == 2:
        put("precharge_row_b", x_data, y)
        y += macrocells["precharge_row_b"].height
    y_array = y
    put("array", x_data, y)
    put("decoder_col", 0, y)
    if config.ports == 2:
        gap = max(4 * lam, process.rules.min_space("nwell"))
        put("decoder_col_b",
            x_data + macrocells["array"].width + gap, y_array)
    y += macrocells["array"].height
    put("precharge_row", x_data, y)

    areas = {name: cell.area() for name, cell in macrocells.items()}
    return Floorplan(
        top=top, macrocells=macrocells, areas_cu2=areas,
        assembled_pla=assembled,
    )


# ---------------------------------------------------------------------------
# macro builders
# ---------------------------------------------------------------------------


def _build_array(config: RamConfig, process: Process,
                 spares: int, spare_cols: int = 0) -> Cell:
    """The bit-cell array with strap columns and spare rows on top.

    Bit-line ports are re-exported on the array's own bottom and top
    edges so the mux row and precharge row connect to it by pure
    abutment — checkable with :func:`repro.pnr.abutting_ports`.

    Spare columns are ordinary bit-cell columns appended after the
    regular ones at the same pitch and strap cadence — "fully
    integrated with the main array", like the spare rows — so DRC and
    abutment hold by the same construction that proves them for the
    regular array.
    """
    from repro.layout.cell import Port

    lam = process.lambda_cu
    dual = config.ports == 2
    bit = sram_dp_cell(process) if dual else sram6t_cell(process)
    cell_h = DP_CELL_H if dual else CELL_H
    strap = (
        strap_cell(process, config.strap_width_lambda, dual_port=dual)
        if config.strap_every
        else None
    )
    # One row strip: bit cells with straps every strap_every columns.
    strip = Cell("row_strip")
    column_x = []
    x = 0
    for c in range(config.columns + spare_cols):
        if strap is not None and c and c % config.strap_every == 0:
            strip.add_instance(
                strap, Transform(translation=Point(x, 0)),
                name=f"strap_{c}",
            )
            x += strap.width
        column_x.append(x)
        strip.add_instance(
            bit, Transform(translation=Point(x, 0)), name=f"bit_{c}"
        )
        x += bit.width
    array = Cell("array")
    total_rows = config.rows + spares
    array.tile(
        strip, columns=1, rows=total_rows,
        pitch_x=strip.width, pitch_y=cell_h * lam,
        alternate_mirror_y=True, name_prefix="row",
    )
    # Re-export the bit-line landings on the array boundary.
    top_y = total_rows * cell_h * lam
    pair_names = ("bl", "blb", "bl2", "blb2") if dual else ("bl", "blb")
    for c, cx in enumerate(column_x):
        for name in pair_names:
            local = bit.port(name)
            r = local.rect
            array.add_port(Port(
                f"{name}_{c}", local.layer,
                r.translated(Point(cx, 0)),
            ))
            array.add_port(Port(
                f"{name}_t_{c}", local.layer,
                r.translated(Point(cx, top_y)),
            ))
    return array


def _build_column_row(config: RamConfig, process: Process,
                      template: Cell, name: str,
                      spare_cols: int = 0) -> Cell:
    """A row of per-bit-line-pair cells matching the array pitch.

    The template's ``bl``/``blb`` ports are re-exported per column on
    both the bottom edge (where the template places them) and, when the
    template carries top-edge twins, the top edge.  Spare columns get
    the same per-pair cell as regular ones (they are full bit-line
    pairs and need precharge/mux service identically).
    """
    from repro.layout.cell import Port

    lam = process.lambda_cu
    strap_w = config.strap_width_lambda * lam
    row = Cell(name)
    x = 0
    for c in range(config.columns + spare_cols):
        if config.strap_every and c and c % config.strap_every == 0:
            x += strap_w
        row.add_instance(
            template, Transform(translation=Point(x, 0)),
            name=f"{template.name}_{c}",
        )
        for pname in ("bl", "blb", "bl2", "blb2",
                      "bl_t", "blb_t", "bl2_t", "blb2_t"):
            if template.has_port(pname):
                local = template.port(pname)
                row.add_port(Port(
                    f"{pname}_{c}", local.layer,
                    local.rect.translated(Point(x, 0)),
                ))
        x += CELL_W * lam
    return row


def _build_sense_row(config: RamConfig, process: Process) -> Cell:
    """Sense amp + write driver per I/O subarray."""
    lam = process.lambda_cu
    sense = senseamp_cell(process, config.gate_size)
    writer = write_driver_cell(process, config.gate_size)
    strap_w = config.strap_width_lambda * lam
    row = Cell("sense_row")
    for i in range(config.bpw):
        # Each subarray starts where its first bit column sits in the
        # array strip: straps are inserted *before* every column that is
        # a nonzero multiple of strap_every, so a boundary strap shifts
        # the subarray too.  (The bit-cell strip and the mux row use the
        # same accounting; a mismatch here misaligns the sense amps by a
        # strap width at every strapped subarray boundary.)
        first_col = i * config.bpc
        x = first_col * CELL_W * lam
        if config.strap_every:
            x += (first_col // config.strap_every) * strap_w
        row.add_instance(
            sense, Transform(translation=Point(x, 0)), name=f"sa_{i}"
        )
        row.add_instance(
            writer,
            Transform(translation=Point(x + sense.width + 8 * lam, 0)),
            name=f"wd_{i}",
        )
    return row


def _build_decoder_column(config: RamConfig, process: Process,
                          spares: int, pitch: int = 0,
                          name: str = "decoder_col") -> Cell:
    """Row decoders + word-line drivers for every (regular) row, and
    bare drivers for the spare rows (driven by the TLB match logic).

    ``pitch`` is the row pitch in centimicrons (defaults to the 6T row
    pitch; dual-port arrays pass their taller pitch).
    """
    lam = process.lambda_cu
    decoder = row_decoder_cell(process, config.row_address_bits)
    driver = wordline_driver_cell(process, config.gate_size)
    col = Cell(name)
    pitch = pitch or CELL_H * lam
    for r in range(config.rows):
        y = r * pitch
        col.add_instance(
            decoder, Transform(translation=Point(0, y)), name=f"dec_{r}"
        )
        col.add_instance(
            driver,
            Transform(translation=Point(decoder.width, y)),
            name=f"drv_{r}",
        )
    for s in range(spares):
        y = (config.rows + s) * pitch
        col.add_instance(
            driver,
            Transform(translation=Point(decoder.width, y)),
            name=f"spare_drv_{s}",
        )
    return col


def _build_tlb(config: RamConfig, process: Process) -> Cell:
    """CAM array: spares entries x row-address bits, plus the spare
    word-line tristate drivers."""
    lam = process.lambda_cu
    cam = cam_cell(process)
    tri = tristate_buffer_cell(process, config.gate_size)
    tlb = Cell("tlb")
    pitch_y = CELL_H * lam
    for s in range(config.spares):
        for b in range(config.row_address_bits):
            tlb.add_instance(
                cam,
                Transform(translation=Point(b * cam.width, s * pitch_y)),
                name=f"cam_{s}_{b}",
            )
        tlb.add_instance(
            tri,
            Transform(
                translation=Point(
                    config.row_address_bits * cam.width + 8 * lam,
                    s * pitch_y,
                )
            ),
            name=f"tri_{s}",
        )
    return tlb


def _build_colsteer(config: RamConfig, process: Process) -> Cell:
    """The column-steering register file and data-path mux.

    One entry per spare column: CAM cells holding the faulty column
    address (compared against the live column-select), a tristate
    driver onto the spare bus, and one 2:1 steering mux per I/O
    subarray to substitute the spare bus for the faulty datum.
    """
    lam = process.lambda_cu
    cam = cam_cell(process)
    tri = tristate_buffer_cell(process, config.gate_size)
    mux = column_mux_cell(process)
    col_addr_bits = max(1, (config.columns - 1).bit_length())
    steer = Cell("colsteer")
    pitch_y = CELL_H * lam
    for s in range(config.spare_cols):
        for b in range(col_addr_bits):
            steer.add_instance(
                cam,
                Transform(translation=Point(b * cam.width, s * pitch_y)),
                name=f"cam_{s}_{b}",
            )
        steer.add_instance(
            tri,
            Transform(
                translation=Point(
                    col_addr_bits * cam.width + 8 * lam, s * pitch_y
                )
            ),
            name=f"tri_{s}",
        )
    mux_x = col_addr_bits * cam.width + tri.width + 16 * lam
    for i in range(config.bpw):
        steer.add_instance(
            mux,
            Transform(translation=Point(mux_x + i * mux.width, 0)),
            name=f"steer_mux_{i}",
        )
    return steer


def _build_datagen(config: RamConfig, process: Process) -> Cell:
    """Johnson counter stages + per-bit XOR comparator slices."""
    stages = config.bpw.bit_length()  # log2(bpw) + 1
    johnson = johnson_bit_cell(process)
    xor = comparator_slice_cell(process)
    dg = Cell("datagen")
    x = 0
    for i in range(stages):
        dg.add_instance(
            johnson, Transform(translation=Point(x, 0)), name=f"j_{i}"
        )
        x += johnson.width
    for i in range(config.bpw):
        dg.add_instance(
            xor, Transform(translation=Point(x, 0)), name=f"xor_{i}"
        )
        x += xor.width
    return dg


def _tile_row(template: Cell, count: int, name: str) -> Cell:
    """A horizontal row of identical cells."""
    if count < 1:
        raise ValueError(f"{name}: need at least one cell")
    row = Cell(name)
    for i in range(count):
        row.add_instance(
            template,
            Transform(translation=Point(i * template.width, 0)),
            name=f"{name}_{i}",
        )
    return row
