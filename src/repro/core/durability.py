"""Power-loss durability helpers.

An ``fsync`` on a file makes its *bytes* durable; it does not make the
file's *directory entry* durable.  After an atomic
``tmp -> final`` rename, a power cut can therefore still lose the file
(the data blocks survive, the name does not) unless the parent
directory is fsynced too.  Every atomic-publish site in the repo — the
artifact store, the campaign checkpoint journal, the service WAL —
funnels through :func:`fsync_dir` after its rename.

Must stay stdlib-only and import-light: it is pulled in from the
lowest layers.
"""

from __future__ import annotations

import os


def fsync_dir(path) -> None:
    """fsync a directory so renames/creates inside it survive power
    loss.

    Best-effort: platforms (and some filesystems) that cannot open a
    directory for reading simply skip the sync — the rename is still
    atomic, only its crash-durability window widens, which is the
    pre-existing behaviour everywhere this helper is called.
    """
    try:
        fd = os.open(os.fspath(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def fsync_file(handle) -> None:
    """Flush + fsync an open file handle (bytes, not directory entry)."""
    handle.flush()
    os.fsync(handle.fileno())
