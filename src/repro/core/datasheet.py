"""Datasheet generation: the tool's timing/area/power guarantees.

"BISRAMGEN ... can generate simple leaf cells ahead of time and
extract and simulate them, thereby extrapolating and providing timing,
area, and power guarantees for the overall system before designing the
overall layout."  The first RAM compiler (TI's RAMGEN, 1986) already
produced "datasheets (for setup and hold times, read access times and
write times, and supply currents and voltages)" — this module produces
the same document.

Timing is a staged switch-level RC model over the characterised leaf
cells: address buffer -> row decode -> word line -> bit-line
differential -> column mux -> current-mode sense.  The TLB penalty is
reported separately together with the masking verdict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.bisr.delay import tlb_delay_s
from repro.bisr.masking import (
    AsyncPrechargeOverlap,
    DecoderUpsizing,
    SyncAddressRegisterOverlap,
    best_masking_strategy,
)
from repro.circuit.extract import bitline_parasitics
from repro.circuit.mosfet import effective_resistance
from repro.cells.sram6t import HEIGHT_LAMBDA as CELL_H
from repro.core.config import RamConfig
from repro.tech.process import get_process


@dataclass(frozen=True)
class Datasheet:
    """The guarantees document for one configuration."""

    config: RamConfig
    read_access_s: float
    write_time_s: float
    setup_time_s: float
    hold_time_s: float
    cycle_time_s: float
    tlb_penalty_s: float
    tlb_masked: bool
    masking_strategy: str
    active_power_w: float
    standby_power_w: float
    supply_v: float
    area_mm2: float
    stage_delays: Dict[str, float]
    selftest_march_s: float = 0.0
    selftest_retention_s: float = 0.0
    #: Content fingerprint of the resolved rule deck the guarantees
    #: were extrapolated under (empty for hand-built instances).
    deck_fingerprint: str = ""

    @property
    def selftest_total_s(self) -> float:
        """Full two-pass IFA-9 self-test duration, retention included."""
        return self.selftest_march_s + self.selftest_retention_s

    def summary(self) -> str:
        """Human-readable datasheet text."""
        lines = [
            f"BISRAMGEN datasheet — {self.config.describe()}",
        ]
        if self.deck_fingerprint:
            lines.append(
                f"  rule deck          : {self.config.process} "
                f"(fingerprint {self.deck_fingerprint})")
        lines += [
            f"  read access time   : {self.read_access_s * 1e9:7.2f} ns",
            f"  write time         : {self.write_time_s * 1e9:7.2f} ns",
            f"  cycle time         : {self.cycle_time_s * 1e9:7.2f} ns",
            f"  address setup/hold : {self.setup_time_s * 1e9:.2f} / "
            f"{self.hold_time_s * 1e9:.2f} ns",
            f"  TLB penalty        : {self.tlb_penalty_s * 1e9:7.2f} ns "
            f"({'masked via ' + self.masking_strategy if self.tlb_masked else 'NOT maskable'})",
            f"  supply             : {self.supply_v:.1f} V",
            f"  active / standby   : {self.active_power_w * 1e3:.1f} mW / "
            f"{self.standby_power_w * 1e6:.1f} uW",
            f"  area               : {self.area_mm2:.3f} mm^2",
            f"  self-test (IFA-9)  : {self.selftest_total_s:7.2f} s "
            f"({self.selftest_march_s * 1e3:.1f} ms march + "
            f"{self.selftest_retention_s:.1f} s retention waits)",
        ]
        return "\n".join(lines)


def build_datasheet(config: RamConfig, area_mm2: float) -> Datasheet:
    """Extrapolate the guarantees for a configuration."""
    process = get_process(config.process)
    f = process.feature_um
    vdd = process.vdd
    lam = process.lambda_cu

    # Stage 1: address buffer + predecode + the row-decoder NAND stack
    # (series resistance grows with the address width, load with the
    # decoder fan).
    r_dec = effective_resistance(
        process.nmos, vdd, 4 * f, f
    ) * config.row_address_bits
    c_dec = 100e-15 + 10e-15 * config.row_address_bits
    t_buffer = 0.6e-9 * (f / 0.7)
    t_decode = t_buffer + 0.69 * r_dec * c_dec

    # Stage 2: word-line driver charging the metal-3 word line across
    # the array plus one access-gate load per column.
    drive_w = 6 * f * config.gate_size * 3
    r_drv = effective_resistance(process.pmos, vdd, drive_w, f)
    wl_length_um = config.total_columns * 68 * lam / 100.0
    c_wl = wl_length_um * process.wire_c_af_um * 0.65e-18 + \
        config.total_columns * process.nmos.cox * \
        (3 * f * 1e-6) * (f * 1e-6)
    t_wordline = 0.69 * r_drv * c_wl

    # Stage 3: bit-line differential development: cell read current
    # discharging the bit line to the ~120 mV the current-mode sense
    # amp needs (the big win of current-mode sensing: ~0.1 V swing,
    # not VDD/2).  The access device in series and velocity saturation
    # derate the level-1 on-current heavily at 5 V.  The sense swing is
    # a fraction of the supply, floored at the 5 V-class 120 mV — a
    # 0.7 V registry deck cannot be asked for a 120 mV differential.
    # Dual-port cells are taller, so the bit line sees more wire per row.
    cell_h = CELL_H
    if config.ports == 2:
        from repro.cells.sram_dp import HEIGHT_LAMBDA as DP_CELL_H

        cell_h = DP_CELL_H
    blp = bitline_parasitics(process, config.total_rows, cell_h * lam)
    i_sat = 0.5 * process.nmos.beta(3 * f, f) * (vdd - process.nmos.vto) ** 2
    i_cell = i_sat / 8.0
    swing = min(0.12, 0.17 * vdd)
    t_bitline = blp.capacitance_f * swing / max(i_cell, 1e-9)

    # Stage 4: column mux (one pass device) + sense decision.
    r_mux = effective_resistance(process.nmos, vdd, 4 * f, f)
    t_mux = 0.69 * r_mux * (80e-15 + 6e-15 * config.bpc)
    t_sense = 0.5e-9 * (f / 0.7)  # sense latch regeneration, scaled

    stage_delays = {
        "decode": t_decode,
        "wordline": t_wordline,
        "bitline": t_bitline,
        "mux": t_mux,
        "sense": t_sense,
    }
    # The column-steering mux sits in the data path after the column
    # mux; row-only configs carry no stage (and no entry) at all.
    if config.spare_cols:
        from repro.bisr.colsteer import colsteer_delay_s

        stage_delays["steer"] = colsteer_delay_s(
            process, config.spare_cols)
    read_access = sum(stage_delays.values())
    # Writes bypass the sense amp; the write driver slams full swing.
    write_time = t_decode + t_wordline + 2.5 * t_bitline

    tlb_penalty = tlb_delay_s(
        process, config.row_address_bits, config.spares
    )
    precharge_window = 0.5 * read_access
    verdict = best_masking_strategy(
        [
            AsyncPrechargeOverlap(precharge_time_s=precharge_window),
            SyncAddressRegisterOverlap(clock_low_time_s=0.5 * read_access),
            DecoderUpsizing(decoder_delay_s=t_decode + t_wordline),
        ],
        tlb_penalty,
    )

    # Power: switched capacitance per cycle (bit lines of one subarray
    # column set + word line + periphery) at the nominal cycle rate.
    cycle = 1.4 * read_access
    c_switched = (
        config.total_columns * blp.capacitance_f * swing / vdd
        + c_wl
        + 200e-15
    )
    freq = 1.0 / cycle
    active_power = c_switched * vdd * vdd * freq
    standby_power = 1e-9 * config.bits * vdd  # junction leakage per cell

    # Self-test duration: the two-pass IFA-9 with Johnson backgrounds
    # at the macro's own cycle time (the retention handshakes dominate).
    from repro.bist.march import IFA_9
    from repro.bist.testtime import test_application_time

    selftest = test_application_time(
        IFA_9, words=config.words, bpw=config.bpw, cycle_s=cycle,
        passes=2,
    )

    return Datasheet(
        config=config,
        read_access_s=read_access,
        write_time_s=write_time,
        setup_time_s=0.2 * read_access,
        hold_time_s=0.1 * read_access,
        cycle_time_s=cycle,
        tlb_penalty_s=tlb_penalty,
        tlb_masked=verdict is not None,
        masking_strategy=verdict.strategy if verdict else "none",
        active_power_w=active_power,
        standby_power_w=standby_power,
        supply_v=vdd,
        area_mm2=area_mm2,
        stage_delays=stage_delays,
        selftest_march_s=selftest.op_time_s,
        selftest_retention_s=selftest.retention_time_s,
        deck_fingerprint=process.fingerprint(),
    )
