"""Stage-level memoization for the compiler's build pipeline.

:meth:`~repro.core.compiler.BISRAMGen.build` is a fixed pipeline —
floorplan -> layout -> control planes -> datasheet -> signoff — whose
stages are pure functions of the configuration, the march test, and
the process rule deck.  A :class:`StageCache` memoises each stage's
product against a content key (the same content-hash posture as the
DRC verdict cache in :mod:`repro.verify.hierdrc`), so a rebuild that
changes nothing reuses everything, and a build that only changes the
signoff policy reuses the cached layout.

The cache is **opt-in and explicitly shared**: cached products are the
live objects (a floorplan's cell hierarchy is not copied on hit), so a
caller that mutates a compiled macro's geometry — the verify tests do
exactly that to provoke findings — must build without a cache or use a
private one.  The macro server and the CLI's cached paths pass a
shared instance; plain ``build()`` keeps today's from-scratch
behaviour.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.errors import ConfigError

#: Pipeline order; ``flow_report`` and the stats dict follow it.
STAGE_ORDER: Tuple[str, ...] = (
    "floorplan", "layout", "control-planes", "datasheet", "signoff",
)

#: Sentinel distinguishing "not cached" from a cached None.
_MISS = object()


@dataclass(frozen=True)
class StageTiming:
    """One stage's outcome inside one build: cache verdict and cost."""

    name: str
    hit: bool
    elapsed_s: float
    key: str = ""

    def describe(self) -> str:
        verdict = "hit " if self.hit else "miss"
        return f"{self.name:<14} {verdict} {self.elapsed_s * 1e3:8.2f} ms"


class StageCache:
    """Bounded LRU cache of stage products, keyed by content.

    Keys are ``(stage_name, content_key)`` where the content key folds
    in everything the stage's product depends on (configuration
    digest, march fingerprint, rule-deck digest).  Thread-safe: the
    macro server's worker threads share one instance.

    Attributes:
        max_entries: LRU bound on cached products (a floorplan for a
            large macro is the dominant cost, so the bound is a count,
            not bytes).
    """

    def __init__(self, max_entries: int = 64) -> None:
        if max_entries < 1:
            raise ConfigError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: "OrderedDict[Tuple[str, str], object]" = \
            OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def lookup(self, stage: str, key: str) -> Tuple[bool, object]:
        """``(hit, product)`` — the flag, not truthiness, is the
        verdict, so falsy products (0, (), None) cache cleanly."""
        with self._lock:
            found = self._entries.get((stage, key), _MISS)
            if found is _MISS:
                self.misses += 1
                return False, None
            self.hits += 1
            self._entries.move_to_end((stage, key))
            return True, found

    def store(self, stage: str, key: str, value) -> None:
        with self._lock:
            self._entries[(stage, key)] = value
            self._entries.move_to_end((stage, key))
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = self.misses = self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """JSON-serializable counters."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": round(self.hit_rate, 4),
            }


class StageRunner:
    """Executes one build's stages against an optional cache.

    Collects a :class:`StageTiming` per executed stage so
    :meth:`~repro.core.compiler.CompiledRam.flow_report` can show
    per-stage hit/miss and timing even for uncached builds.
    """

    def __init__(self, cache: Optional[StageCache] = None) -> None:
        self.cache = cache
        self.timings: List[StageTiming] = []

    def run(self, stage: str, key: str, producer):
        """Return the stage product, from cache when possible."""
        import time

        t0 = time.perf_counter()
        hit, value = False, None
        if self.cache is not None:
            hit, value = self.cache.lookup(stage, key)
        if not hit:
            value = producer()
            if self.cache is not None:
                self.cache.store(stage, key, value)
        self.timings.append(StageTiming(
            name=stage, hit=hit,
            elapsed_s=time.perf_counter() - t0, key=key,
        ))
        return value

    def summary(self) -> Dict[str, dict]:
        """Per-stage hit/timing mapping in pipeline order."""
        out: Dict[str, dict] = {}
        for timing in self.timings:
            out[timing.name] = {
                "hit": timing.hit,
                "elapsed_s": round(timing.elapsed_s, 6),
            }
        return out
