"""Pid-liveness with recycled-pid detection.

``os.kill(pid, 0)`` answers "does some process with this pid exist?",
which is the wrong question for crash recovery: on a busy host a pid
is recycled in minutes, and a claim file or liveness lease whose owner
died can then point at an unrelated live process forever.  The robust
identity of a process is the pair ``(pid, start time)`` — Linux exposes
the start time (in clock ticks since boot) as field 22 of
``/proc/<pid>/stat``, and a recycled pid necessarily has a different
one.

Every file-based ownership record in the repo (artifact-store claim
files, the HA liveness lease) stamps :func:`process_start_time` at
creation and checks :func:`same_process` at adoption time.  On
platforms without ``/proc`` the start time reads as None and liveness
degrades gracefully to the plain pid probe.

Must stay stdlib-only and import-light: it is pulled in from the
lowest layers.
"""

from __future__ import annotations

import os
from typing import Optional


def process_start_time(pid: int) -> Optional[int]:
    """The process's start time in clock ticks since boot, or None.

    None means "unknown" (no ``/proc``, permission denied, pid gone),
    never "dead" — callers must combine it with :func:`pid_alive`.
    """
    try:
        with open(f"/proc/{pid}/stat", "rb") as handle:
            stat = handle.read().decode("ascii", "replace")
        # The comm field is parenthesised and may itself contain
        # spaces or parens; everything after the *last* ')' is
        # whitespace-separated.  starttime is field 22 overall, i.e.
        # index 19 of the post-comm fields (state is field 3).
        return int(stat.rpartition(")")[2].split()[19])
    except (OSError, ValueError, IndexError):
        return None


def pid_alive(pid: int) -> bool:
    """Whether *some* process with this pid exists on this host.

    EPERM counts as alive (the pid exists, it just is not ours to
    signal) — exactly the semantics the claim files relied on.
    """
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        pass  # e.g. EPERM: exists but not ours
    return True


def same_process(pid: int, start: Optional[int]) -> bool:
    """Whether the process that recorded ``(pid, start)`` still runs.

    False when the pid is gone *or* when it is alive but started at a
    different time — a recycled pid wearing a dead owner's number.  An
    unknown start time (either side) falls back to the pid probe, so
    records written on platforms without ``/proc`` stay adoptable only
    by age.
    """
    if not pid_alive(pid):
        return False
    if start is None:
        return True
    observed = process_start_time(pid)
    return observed is None or observed == start
