"""RAM configuration: the parameters the user gives BISRAMGEN.

"The parameters explicitly specified by the user include: bpw, bpc,
number of words, number of spare rows (4, 8, or 16), size of critical
gates in the RAM circuitry, and the strap space. ... The value of bpc
must be a power of 2."
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Mapping, Optional

from repro.core.canonical import stable_digest
from repro.core.errors import ConfigError


@dataclass(frozen=True)
class RamConfig:
    """A validated BISR-RAM configuration.

    Attributes:
        words: number of addressable words (CPU-visible).
        bpw: bits per word (power of two).
        bpc: bits per column, the column-mux factor (power of two).
        spares: spare rows; the paper's tool offers 4, 8 or 16 and only
            guarantees a maskable TLB delay up to 4 ("BISRAMGEN will
            allow a user to generate a RAM array with more spares but
            will not be able to guarantee that the TLB delay penalty
            can be masked").
        spare_cols: spare bit-line pairs for 2-D redundancy (0 = the
            paper's row-only repair).  Each spare column is a full
            bit-line pair running the whole array height, bypassed in
            via the column-steering mux; 0..16 allowed.
        gate_size: integer drive-strength multiplier for critical gates
            (precharge devices, word-line drivers).
        strap_every: bit-cell columns between strap columns (0 = no
            straps); Figs. 6-7 use 32.
        strap_width_lambda: width of each strap column in lambda.
        process: process name — a builtin preset ("cda05", "mos06",
            "cda07", "mos08") or any registry-loaded deck
            (``repro tech list`` enumerates them).
        ports: access ports on the bit cell — 1 (classic 6T) or 2
            (dual-port 8T: second word line and bit-line pair, its own
            precharge row and row decoder).
    """

    words: int
    bpw: int
    bpc: int
    spares: int = 4
    spare_cols: int = 0
    gate_size: int = 1
    strap_every: int = 32
    strap_width_lambda: int = 16
    process: str = "cda07"
    ports: int = 1

    def __post_init__(self) -> None:
        if self.words < 1:
            raise ConfigError("words must be positive")
        for name in ("bpw", "bpc"):
            value = getattr(self, name)
            if value < 1 or value & (value - 1):
                raise ConfigError(f"{name} must be a positive power of two")
        if self.words % self.bpc:
            raise ConfigError(
                f"words ({self.words}) must be a multiple of bpc "
                f"({self.bpc}) so rows come out integral"
            )
        if self.spares not in (4, 8, 16):
            raise ConfigError(
                "spares must be 4, 8, or 16 (the options BISRAMGEN offers)"
            )
        if not 0 <= self.spare_cols <= 16:
            raise ConfigError("spare_cols must be in 0..16")
        if self.gate_size < 1:
            raise ConfigError("gate_size must be >= 1")
        if self.strap_every < 0:
            raise ConfigError("strap_every must be non-negative")
        if self.strap_every and self.strap_width_lambda < 12:
            raise ConfigError("strap columns need >= 12 lambda for well ties")
        if self.ports not in (1, 2):
            raise ConfigError("ports must be 1 (6T) or 2 (dual-port 8T)")

    # -- derived geometry -----------------------------------------------------

    @property
    def rows(self) -> int:
        """Regular word-line count."""
        return self.words // self.bpc

    @property
    def total_rows(self) -> int:
        return self.rows + self.spares

    @property
    def columns(self) -> int:
        """Physical bit-line pair count (bpw subarrays of bpc each)."""
        return self.bpw * self.bpc

    @property
    def total_columns(self) -> int:
        """Physical bit-line pairs including spare columns."""
        return self.columns + self.spare_cols

    @property
    def bits(self) -> int:
        """Usable capacity in bits."""
        return self.words * self.bpw

    @property
    def row_address_bits(self) -> int:
        return max(1, (self.rows - 1).bit_length())

    @property
    def column_address_bits(self) -> int:
        return max(1, (self.bpc - 1).bit_length()) if self.bpc > 1 else 0

    @property
    def address_bits(self) -> int:
        return max(1, (self.words - 1).bit_length())

    @property
    def spare_word_fraction(self) -> float:
        """Redundancy level: spare words over regular words.

        The paper notes 1-4 spare rows give bpc/words to 4*bpc/words
        redundancy, "large enough in practice".
        """
        return (self.spares * self.bpc) / self.words

    @property
    def strap_count(self) -> int:
        if not self.strap_every:
            return 0
        return max(0, (self.columns - 1) // self.strap_every)

    # -- canonical identity ---------------------------------------------------

    def to_dict(self) -> dict:
        """Canonical plain-dict form: every field, JSON-serializable.

        The inverse of :meth:`from_dict`; the payload :meth:`digest`
        hashes.  Field order follows the dataclass declaration, but the
        digest sorts keys, so the order here is cosmetic.
        """
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "RamConfig":
        """Rebuild a validated configuration from :meth:`to_dict` output.

        Raises:
            ConfigError: on unknown keys, missing required keys, or any
                value the constructor's own validation rejects.
        """
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown RamConfig field(s): {sorted(unknown)}"
            )
        try:
            return cls(**dict(data))
        except TypeError as error:
            raise ConfigError(f"incomplete RamConfig: {error}") from None

    def digest(self, chars: Optional[int] = None) -> str:
        """Stable content digest: sorted-key canonical JSON -> SHA-256.

        Two equal configurations digest equal in any process on any
        platform, so this is the identity the artifact store, the
        compiler's stage cache, and campaign fingerprints key on.

        The payload folds in the resolved *deck fingerprint*
        (:meth:`repro.tech.process.Process.fingerprint`) on top of
        :meth:`to_dict`: two configs naming the same process string but
        resolving different rule decks (a ``--tech-dir`` deck shadowing
        a builtin, or an edited descriptor file) digest differently, so
        no cache layer ever serves geometry generated under other
        rules.  ``to_dict``/``from_dict`` stay fingerprint-free — the
        fingerprint is derived state, not configuration.
        """
        from repro.tech.process import get_process

        payload = dict(self.to_dict())
        payload["deck_fingerprint"] = get_process(self.process).fingerprint()
        return stable_digest(payload, chars)

    def describe(self) -> str:
        kb = self.bits / 1024
        cols = (f", cols={self.columns}+{self.spare_cols} spare"
                if self.spare_cols else "")
        dp = ", dual-port" if self.ports == 2 else ""
        return (
            f"{self.words} words x {self.bpw} bits ({kb:.0f} Kbit), "
            f"bpc={self.bpc}, rows={self.rows}+{self.spares} spare"
            f"{cols}, process={self.process}{dp}"
        )
